"""GoP-structured VBR video source (frame-size marginals over a GoP).

MPEG-style video is not well modelled by i.i.d. renegotiation: the
encoder emits a deterministic *group-of-pictures* pattern (e.g.
``IBBPBBPBBPBB``) in which intra-coded I frames are several times larger
than predicted P frames, which in turn dwarf bidirectional B frames.
The bandwidth process of one flow is therefore a cyclostationary chain:
the frame *type* sequence is periodic and deterministic, while the frame
*size* (here: the rate while that frame is on the wire) is a fresh draw
from the type's marginal.

:class:`VbrVideoSource` realizes exactly that process for the event
engine (:class:`VbrFlow` steps through the pattern at the frame period,
starting from a uniformly random phase so a population of flows is
stationary in aggregate), and exposes the exact stationary mixture
moments so controllers and theory formulas see the true ``mu`` and
``sigma`` of what is simulated.

:func:`paper_vbr_source` builds the source from the same three numbers
the rest of the library uses to describe a class -- mean rate, overall
coefficient of variation, and correlation time-scale (taken as one GoP
duration) -- splitting the requested variance between the deterministic
I/P/B size ratios and the within-type marginal spread.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ParameterError
from repro.traffic.base import FlowProcess, TrafficSource
from repro.traffic.marginals import LognormalMarginal, Marginal

__all__ = [
    "VbrFlow",
    "VbrVideoSource",
    "paper_vbr_source",
    "DEFAULT_GOP_PATTERN",
    "DEFAULT_SIZE_RATIOS",
]

#: The classic 12-frame MPEG GoP.
DEFAULT_GOP_PATTERN = "IBBPBBPBBPBB"

#: Typical encoder size ratios: I frames ~5x, P frames ~2.5x a B frame.
DEFAULT_SIZE_RATIOS = {"I": 5.0, "P": 2.5, "B": 1.0}

#: Floor for the within-type CV so every type marginal stays a proper
#: distribution even when the GoP structure alone already supplies (or
#: exceeds) the requested overall variance.
_MIN_WITHIN_CV = 0.02


class VbrFlow(FlowProcess):
    """One video flow stepping through the GoP pattern frame by frame."""

    __slots__ = ("_source", "_position", "rate")

    def __init__(self, source: "VbrVideoSource", rng: np.random.Generator) -> None:
        self._source = source
        # Uniform random GoP phase: the population is stationary even
        # though each flow's type sequence is deterministic.
        self._position = int(rng.integers(len(source.pattern)))
        self.rate = source.marginal_at(self._position).sample(rng)

    def time_to_next_change(self, rng: np.random.Generator) -> float:
        return self._source.frame_period

    def apply_change(self, rng: np.random.Generator) -> None:
        self._position = (self._position + 1) % len(self._source.pattern)
        self.rate = self._source.marginal_at(self._position).sample(rng)


class VbrVideoSource(TrafficSource):
    """Population of GoP-patterned VBR flows.

    Parameters
    ----------
    marginals : mapping of frame type -> Marginal
        Rate distribution while a frame of that type is on the wire.
    pattern : str
        The GoP frame-type sequence; every character must have a marginal.
    frame_rate : float
        Frames per unit time; one GoP lasts ``len(pattern) / frame_rate``.
    """

    def __init__(self, marginals, pattern: str, frame_rate: float) -> None:
        if not pattern:
            raise ParameterError("GoP pattern must be non-empty")
        if frame_rate <= 0.0:
            raise ParameterError("frame_rate must be positive")
        self.marginals: dict[str, Marginal] = dict(marginals)
        missing = sorted(set(pattern) - set(self.marginals))
        if missing:
            raise ParameterError(
                f"GoP pattern uses frame types without marginals: "
                f"{', '.join(missing)}"
            )
        self.pattern = str(pattern)
        self.frame_rate = float(frame_rate)
        self.frame_period = 1.0 / self.frame_rate
        # Exact stationary mixture moments over one GoP period.
        weights = {
            t: pattern.count(t) / len(pattern) for t in set(pattern)
        }
        mean = sum(w * self.marginals[t].mean for t, w in weights.items())
        second = sum(
            w * (self.marginals[t].std ** 2 + self.marginals[t].mean ** 2)
            for t, w in weights.items()
        )
        self._weights = weights
        self._mean = float(mean)
        self._var = max(float(second - mean * mean), 0.0)

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def std(self) -> float:
        return math.sqrt(self._var)

    @property
    def correlation_time(self) -> float:
        """One GoP duration -- the period of the frame-type cycle."""
        return len(self.pattern) * self.frame_period

    def marginal_at(self, position: int) -> Marginal:
        return self.marginals[self.pattern[position]]

    def new_flow(self, rng: np.random.Generator) -> VbrFlow:
        return VbrFlow(self, rng)

    def sample_rates(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` stationary rates (vectorized).

        A stationary observation of one flow is: uniform position in the
        GoP, then a draw from that position's type marginal.  Positions
        are drawn first, then each type's block in sorted-type order, so
        the stream of RNG consumption is deterministic for a given seed.
        """
        size = int(size)
        if size <= 0:
            return np.empty(0, dtype=float)
        positions = rng.integers(0, len(self.pattern), size=size)
        types = np.array([self.pattern[p] for p in positions])
        out = np.empty(size, dtype=float)
        for frame_type in sorted(self.marginals):
            mask = types == frame_type
            count = int(mask.sum())
            if count:
                out[mask] = self.marginals[frame_type].sample(rng, count)
        return out


def paper_vbr_source(
    mean: float,
    cv: float,
    *,
    gop_time: float,
    pattern: str = DEFAULT_GOP_PATTERN,
    size_ratios=None,
) -> VbrVideoSource:
    """Build a VBR video source from class-level (mean, cv, T_c).

    The GoP pattern and I/P/B size ratios fix the *between-type*
    variance; whatever remains of the requested overall variance
    ``(cv * mean)^2`` is assigned as a common *within-type* CV on
    lognormal frame marginals (floored at a small positive value, so a
    cv below what the GoP structure alone produces yields a slightly
    burstier source than asked -- the exact moments are always exposed
    via :attr:`VbrVideoSource.mean` / :attr:`VbrVideoSource.std`).

    ``gop_time`` becomes the source's correlation time-scale: the frame
    rate is chosen so one GoP spans exactly ``gop_time``.
    """
    if mean <= 0.0 or cv <= 0.0:
        raise ParameterError("mean and cv must be positive")
    if gop_time <= 0.0:
        raise ParameterError("gop_time must be positive")
    ratios = dict(DEFAULT_SIZE_RATIOS if size_ratios is None else size_ratios)
    missing = sorted(set(pattern) - set(ratios))
    if missing:
        raise ParameterError(
            f"GoP pattern uses frame types without size ratios: "
            f"{', '.join(missing)}"
        )
    for frame_type, ratio in ratios.items():
        if not (math.isfinite(ratio) and ratio > 0.0):
            raise ParameterError(
                f"size ratio for frame type {frame_type!r} must be positive"
            )
    weights = {t: pattern.count(t) / len(pattern) for t in set(pattern)}
    # Per-type means from the ratios: m_t = ratio_t * base with the base
    # chosen so the mixture mean hits the requested mean.
    base = mean / sum(w * ratios[t] for t, w in weights.items())
    type_means = {t: ratios[t] * base for t in weights}
    # Between-type variance is fixed by the ratios; the within-type CV
    # soaks up the remainder of the requested overall variance.
    mean_sq = sum(w * type_means[t] ** 2 for t, w in weights.items())
    var_between = mean_sq - mean * mean
    var_within = max((cv * mean) ** 2 - var_between, 0.0)
    cv_within = max(math.sqrt(var_within / mean_sq), _MIN_WITHIN_CV)
    marginals = {
        t: LognormalMarginal(type_means[t], cv_within) for t in weights
    }
    frame_rate = len(pattern) / gop_time
    return VbrVideoSource(marginals, pattern, frame_rate)
