"""Tests for the per-link class criterion bank."""

import pytest

from repro.classes.bank import ClassBank
from repro.classes.policy import ClassPolicy, ClassPolicySet
from repro.core.controllers import CertaintyEquivalentController
from repro.core.estimators import BandwidthEstimate


def policies(alpha=None) -> ClassPolicySet:
    return ClassPolicySet([
        ClassPolicy(
            name="gold", p_q=1e-2, mean_rate=2.0, snr=0.4,
            correlation_time=1.0, share=0.7, alpha=alpha,
        ),
        ClassPolicy(
            name="bulk", p_q=5e-2, mean_rate=1.0, snr=0.2,
            correlation_time=2.0, share=0.3, alpha=alpha,
        ),
    ])


def bank(policy_set=None, capacity=100.0) -> ClassBank:
    return ClassBank(
        policy_set if policy_set is not None else policies(),
        capacity=capacity,
        holding_time=200.0,
        memory=10.0,
    )


class TestCapacityPartition:
    def test_shares_partition_the_link(self):
        b = bank(capacity=100.0)
        assert b.capacity_of(0) == pytest.approx(70.0)
        assert b.capacity_of(1) == pytest.approx(30.0)
        assert sum(b.capacity_of(k) for k in b.class_ids()) == pytest.approx(
            b.capacity
        )

    def test_name_lookups_delegate_to_the_policy_set(self):
        b = bank()
        assert b.class_id("bulk") == 1
        assert b.name_of(0) == "gold"
        assert b.policy_of(1).name == "bulk"
        assert len(b) == 2


class TestControllers:
    def test_healthy_without_alpha_is_plain_ce_at_the_share(self):
        """No pre-inverted alpha: the everyday criterion is the plain
        certainty-equivalent controller at (share * capacity, p_q) --
        the identity the single-class differential digest rests on."""
        b = bank(capacity=100.0)
        estimate = BandwidthEstimate(mu=2.0, sigma=0.8, n=20)
        for class_id, policy in policies().items():
            expected = CertaintyEquivalentController(
                policy.share * 100.0, policy.p_q
            )
            got = b.controller(class_id).target_count(estimate, 5)
            assert got == expected.target_count(estimate, 5)

    def test_healthy_with_alpha_uses_the_adjusted_target(self):
        b = bank(policies(alpha=3.0), capacity=100.0)
        estimate = BandwidthEstimate(mu=2.0, sigma=0.8, n=20)
        expected = CertaintyEquivalentController(70.0, alpha=3.0)
        got = b.controller(0).target_count(estimate, 5)
        assert got == expected.target_count(estimate, 5)

    def test_conservative_never_admits_more_than_healthy(self):
        b = bank(capacity=100.0)
        estimate = BandwidthEstimate(mu=2.0, sigma=0.8, n=20)
        for class_id in b.class_ids():
            healthy = b.controller(class_id).target_count(estimate, 5)
            conservative = b.controller(
                class_id, conservative=True
            ).target_count(estimate, 5)
            assert conservative <= healthy
