"""Tests for mixture parameters and the classed-gateway assembly."""

import pytest

from repro.classes.factory import build_classed_gateway, mixture_parameters
from repro.classes.policy import default_class_policies
from repro.errors import ParameterError


class TestMixtureParameters:
    def test_full_share_population_and_moments(self):
        policies = default_class_policies()
        out = mixture_parameters(policies, capacity=100.0)
        expected_n = sum(
            p.share * 100.0 / p.mean_rate for p in policies
        )
        assert out["n"] == pytest.approx(expected_n)
        # sum_k n_k mu_k = capacity, so the pooled mean is c / n.
        assert out["mean"] == pytest.approx(100.0 / expected_n)
        assert out["p_q"] == min(p.p_q for p in policies)
        assert out["correlation_time"] == max(
            p.correlation_time for p in policies
        )
        assert out["cv"] > 0.0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ParameterError):
            mixture_parameters(default_class_policies(), capacity=0.0)


class TestBuildClassedGateway:
    def test_links_are_classed_and_snapshot_reports_classes(self):
        gateway, policies = build_classed_gateway(
            links=2, capacity=50.0, holding_time=100.0, seed=3
        )
        snapshot = gateway.snapshot()
        assert len(snapshot["links"]) == 2
        for summary in snapshot["links"].values():
            report = summary["classes"]
            assert set(report) == set(policies.names)
            for name, stats in report.items():
                policy = policies.policy(name)
                assert stats["capacity"] == pytest.approx(
                    policy.share * 50.0
                )

    def test_adjust_presets_every_alpha(self):
        _, policies = build_classed_gateway(
            capacity=50.0, holding_time=100.0, adjust=True
        )
        for _, policy in policies.items():
            assert policy.alpha is not None

    def test_classed_admission_is_billed_to_the_class(self):
        gateway, _ = build_classed_gateway(
            links=1, capacity=50.0, holding_time=100.0, seed=3
        )
        gateway.tick(0.0)
        decision = gateway.admit("f0", 0.1, "voice")
        assert decision.admitted
        assert gateway.flow_class_of("f0") == "voice"
        link = gateway.snapshot()["links"]["link0"]
        assert link["classes"]["voice"]["n_flows"] == 1
        assert link["classes"]["video"]["n_flows"] == 0
        gateway.depart("f0", 0.2)
        link = gateway.snapshot()["links"]["link0"]
        assert link["classes"]["voice"]["n_flows"] == 0

    def test_unknown_class_is_rejected_without_state_change(self):
        gateway, _ = build_classed_gateway(
            links=1, capacity=50.0, holding_time=100.0, seed=3
        )
        gateway.tick(0.0)
        with pytest.raises(ParameterError):
            gateway.admit("f0", 0.1, "fax")
        assert gateway.n_flows == 0

    def test_classless_admission_still_works_on_a_classed_link(self):
        """v1 peers send no class; the pooled criterion must decide."""
        gateway, _ = build_classed_gateway(
            links=1, capacity=50.0, holding_time=100.0, seed=3
        )
        gateway.tick(0.0)
        decision = gateway.admit("f0", 0.1)
        assert decision.admitted
        assert gateway.flow_class_of("f0") is None

    def test_needs_at_least_one_link(self):
        with pytest.raises(ParameterError):
            build_classed_gateway(links=0)
