"""Tests for class policies, the validated registry and mix weights."""

import math

import pytest

from repro.classes.policy import (
    ALPHA_CAP,
    ClassPolicy,
    ClassPolicySet,
    adjusted_class_alpha,
    default_class_policies,
    validate_mix_weights,
)
from repro.core.gaussian import q_inverse
from repro.errors import MixWeightError, ParameterError


def policy(name="data", **overrides) -> ClassPolicy:
    base = dict(
        name=name, p_q=1e-2, mean_rate=1.0, snr=0.3,
        correlation_time=1.0, share=1.0,
    )
    base.update(overrides)
    return ClassPolicy(**base)


class TestValidateMixWeights:
    def test_valid_weights_pass_through_unchanged(self):
        weights = {"a": 0.25, "b": 0.75}
        out = validate_mix_weights(weights)
        assert out == weights  # values untouched, never renormalized

    def test_empty_rejected(self):
        with pytest.raises(MixWeightError):
            validate_mix_weights({})

    def test_sum_error_names_every_weight(self):
        with pytest.raises(MixWeightError) as err:
            validate_mix_weights({"video": 0.5, "data": 0.3})
        message = str(err.value)
        assert "video=0.5" in message and "data=0.3" in message
        assert "renormalized" in message
        assert err.value.weights == {"video": 0.5, "data": 0.3}

    def test_bad_entries_named(self):
        with pytest.raises(MixWeightError) as err:
            validate_mix_weights(
                {"a": -0.5, "b": float("nan"), "c": 1.5}
            )
        message = str(err.value)
        assert "a=-0.5" in message and "b=nan" in message
        assert "c=" not in message  # only the offenders are named

    def test_zero_weight_rejected(self):
        with pytest.raises(MixWeightError):
            validate_mix_weights({"a": 0.0, "b": 1.0})

    def test_float_rounding_tolerated(self):
        # 0.1 * 10 sums to 0.9999999999999999; that is rounding, not a
        # configuration mistake.
        weights = {f"c{i}": 0.1 for i in range(10)}
        assert validate_mix_weights(weights) == weights

    def test_non_numeric_rejected(self):
        with pytest.raises(MixWeightError):
            validate_mix_weights({"a": "lots"})


class TestClassPolicy:
    def test_sigma_is_snr_times_mean(self):
        assert policy(mean_rate=4.0, snr=0.5).sigma == pytest.approx(2.0)

    @pytest.mark.parametrize("overrides", [
        dict(name=""),
        dict(p_q=0.0),
        dict(p_q=1.0),
        dict(mean_rate=0.0),
        dict(snr=-0.1),
        dict(correlation_time=0.0),
        dict(share=0.0),
        dict(share=1.5),
        dict(alpha=0.0),
        dict(source_kind="cbr"),
    ])
    def test_validation(self, overrides):
        with pytest.raises(ParameterError):
            policy(**overrides)


class TestClassPolicySet:
    def two(self) -> ClassPolicySet:
        return ClassPolicySet([
            policy("gold", share=0.6),
            policy("best-effort", share=0.4),
        ])

    def test_ids_are_positional(self):
        policies = self.two()
        assert policies.class_id("gold") == 0
        assert policies.class_id("best-effort") == 1
        assert policies.name_of(1) == "best-effort"
        assert policies.names == ("gold", "best-effort")

    def test_unknown_name_and_id(self):
        policies = self.two()
        with pytest.raises(ParameterError):
            policies.class_id("silver")
        with pytest.raises(ParameterError):
            policies.policy_at(2)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ParameterError):
            ClassPolicySet([policy("a", share=0.5), policy("a", share=0.5)])

    def test_shares_must_sum_to_one(self):
        with pytest.raises(MixWeightError):
            ClassPolicySet([policy("a", share=0.5), policy("b", share=0.4)])

    def test_mix_weights_round_trip(self):
        assert self.two().mix_weights() == {"gold": 0.6, "best-effort": 0.4}

    def test_with_adjusted_alphas_sets_every_alpha(self):
        adjusted = self.two().with_adjusted_alphas(
            capacity=100.0, holding_time=200.0, memory=10.0
        )
        for _, p in adjusted.items():
            assert p.alpha is not None and p.alpha > 0.0


class TestAdjustedClassAlpha:
    def test_never_laxer_than_the_plain_target(self):
        p = policy(p_q=1e-2, snr=0.3, correlation_time=1.0, share=0.5)
        alpha = adjusted_class_alpha(
            p, capacity=200.0, holding_time=100.0, memory=5.0
        )
        assert alpha >= q_inverse(p.p_q)

    def test_quantized_to_grid(self):
        p = policy(share=0.5)
        alpha = adjusted_class_alpha(
            p, capacity=200.0, holding_time=100.0, memory=5.0
        )
        scaled = alpha / 1e-4
        assert scaled == pytest.approx(round(scaled), abs=1e-6)

    def test_capped(self):
        p = policy(p_q=1e-2, snr=2.0, correlation_time=50.0, share=0.5)
        alpha = adjusted_class_alpha(
            p, capacity=20.0, holding_time=40.0, memory=0.05
        )
        assert alpha <= ALPHA_CAP


class TestDefaultPolicies:
    def test_canonical_roster(self):
        policies = default_class_policies()
        assert policies.names == ("video", "data", "voice")
        assert math.fsum(p.share for p in policies) == pytest.approx(1.0)
        # Distinct QoS targets and time-scales -- the Sec 5.4 heterogeneity.
        assert len({p.p_q for p in policies}) == 3
        assert len({p.correlation_time for p in policies}) == 3
        assert policies.policy("video").source_kind == "vbr"

    def test_share_override(self):
        policies = default_class_policies({"video": 0.7, "voice": 0.3})
        assert policies.names == ("video", "voice")
        assert policies.policy("video").share == pytest.approx(0.7)

    def test_unknown_share_name_rejected(self):
        with pytest.raises(ParameterError):
            default_class_policies({"video": 0.5, "fax": 0.5})
