"""Satellite properties of the class subsystem.

* A Hypothesis property that pins the per-class eqn-(42) guarantee: on a
  mixed two-class workload every admitted classed flow leaves its class
  in a state whose Gaussian overflow probability -- evaluated at the
  estimate the controller actually used -- stays at or below that
  class's own ``p_q``.
* A differential test: a gateway carrying one unadjusted class is
  byte-identical, decision digest and all, to today's classless gateway
  -- multi-class support must cost existing deployments nothing.
"""

import hashlib
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classes.factory import build_classed_gateway, mixture_parameters
from repro.classes.feed import ClassedSourceFeed
from repro.classes.policy import ClassPolicy, ClassPolicySet, make_class_source
from repro.core.gaussian import q_function, q_inverse
from repro.core.memory import critical_time_scale
from repro.runtime.feed import SourceFeed
from repro.runtime.gateway import AdmissionGateway
from repro.runtime.link import ManagedLink
from repro.runtime.metrics import MetricsRegistry
from repro.service.server import digest_record

CAPACITY = 60.0
HOLDING_TIME = 120.0


def two_class_set(p_q1, p_q2, snr1, snr2, share) -> ClassPolicySet:
    # Pre-inverted plain alphas keep scipy's root-finder out of the
    # hypothesis loop; alpha = Q^-1(p_q) makes the healthy criterion the
    # exact eqn-(42) target the property asserts against.
    return ClassPolicySet([
        ClassPolicy(
            name="a", p_q=p_q1, mean_rate=2.0, snr=snr1,
            correlation_time=1.0, share=share, alpha=q_inverse(p_q1),
        ),
        ClassPolicy(
            name="b", p_q=p_q2, mean_rate=0.8, snr=snr2,
            correlation_time=0.5, share=1.0 - share, alpha=q_inverse(p_q2),
        ),
    ])


class TestPerClassConformanceProperty:
    @given(
        p_q1=st.floats(1e-3, 0.1),
        p_q2=st.floats(1e-3, 0.1),
        snr1=st.floats(0.05, 0.8),
        snr2=st.floats(0.05, 0.8),
        share=st.floats(0.25, 0.75),
        seed=st.integers(0, 2**16),
        arrivals=st.lists(
            st.sampled_from(["a", "b"]), min_size=10, max_size=80
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_admitted_state_respects_the_class_p_q(
        self, p_q1, p_q2, snr1, snr2, share, seed, arrivals
    ):
        """Every classed admit decided on a measured target leaves class
        ``k`` with ``Q((c_k - n_k mu_k) / (sqrt(n_k) sigma_k)) <= p_q_k``.

        The occupancy after an accept is at most the controller's real-
        valued target, where the Gaussian overflow equals ``Q(alpha_k) =
        p_q_k`` exactly; fewer flows can only be safer.  This is the
        per-class ``p_f <= p_q`` criterion guarantee, checked at the
        estimate the controller actually used -- no Monte-Carlo noise.
        """
        policies = two_class_set(p_q1, p_q2, snr1, snr2, share)
        sources = {
            class_id: make_class_source(policy)
            for class_id, policy in policies.items()
        }
        feed = ClassedSourceFeed(sources, 0.5, seed=seed)
        link = ManagedLink.build(
            "link0",
            capacity=CAPACITY,
            holding_time=HOLDING_TIME,
            feed=feed,
            p_q=min(p_q1, p_q2),
            snr=max(snr1, snr2),
            correlation_time=1.0,
            mean_rate=mixture_parameters(policies, capacity=CAPACITY)["mean"],
            memory=8.0,
            registry=MetricsRegistry(),
            class_policies=policies,
        )
        bank = link.class_bank
        n_k = {"a": 0, "b": 0}
        for i, cls in enumerate(arrivals):
            decision = link.admit(0.6 * (i + 1), flow_class=cls)
            if not decision.admitted:
                continue
            n_k[cls] += 1
            if decision.reason != "target":
                continue  # bootstrap admits carry no measured target
            mu, sigma = decision.mu_hat, decision.sigma_hat
            if not (mu > 0.0 and sigma > 0.0):
                continue
            class_id = policies.class_id(cls)
            cap_k = bank.capacity_of(class_id)
            p_q = policies.policy(cls).p_q
            overflow = q_function(
                (cap_k - n_k[cls] * mu) / (math.sqrt(n_k[cls]) * sigma)
            )
            assert overflow <= p_q * (1.0 + 1e-9), (
                f"class {cls}: admitted into Q={overflow:.3e} > "
                f"p_q={p_q:.3e} at n_k={n_k[cls]}, mu={mu}, sigma={sigma}"
            )


class TestSingleClassDifferentialDigest:
    """One unadjusted class == today's classless gateway, byte for byte."""

    def single_policy(self) -> ClassPolicySet:
        return ClassPolicySet([
            ClassPolicy(
                name="only", p_q=1e-2, mean_rate=1.0, snr=0.3,
                correlation_time=1.0, share=1.0, source_kind="rcbr",
            ),
        ])

    def drive(self, gateway, flow_class) -> str:
        sha = hashlib.sha256()
        t = 0.0
        live = []
        for i in range(120):
            t += 0.25
            flow = f"f{i}"
            decision = gateway.admit(flow, t, flow_class)
            sha.update(digest_record(flow, decision))
            if decision.admitted:
                live.append(flow)
            if i % 7 == 3 and live:
                gateway.depart(live.pop(0), t)
        return sha.hexdigest()

    def test_digest_matches_the_classless_twin(self):
        policies = self.single_policy()
        policy = policies.policy("only")
        seed = 11
        classed, installed = build_classed_gateway(
            policies,
            links=1,
            capacity=CAPACITY,
            holding_time=HOLDING_TIME,
            seed=seed,
        )
        assert installed.policy("only").alpha is None

        # The classless twin, assembled exactly like the factory does it
        # (same memory rule, feed period, seed and pooled parameters).
        mixture = mixture_parameters(policies, capacity=CAPACITY)
        memory = critical_time_scale(HOLDING_TIME, mixture["n"])
        registry = MetricsRegistry()
        feed = SourceFeed(
            make_class_source(policy),
            period=max(memory / 4.0, 1e-3),
            seed=seed * 1000,
        )
        link = ManagedLink.build(
            "link0",
            capacity=CAPACITY,
            holding_time=HOLDING_TIME,
            feed=feed,
            p_q=mixture["p_q"],
            snr=mixture["cv"],
            correlation_time=mixture["correlation_time"],
            mean_rate=mixture["mean"],
            memory=memory,
            registry=registry,
        )
        classless = AdmissionGateway(
            [link], placement="least-loaded", registry=registry
        )

        assert self.drive(classed, "only") == self.drive(classless, None)

    def test_twin_classed_gateways_decide_identically(self):
        """Two classed gateways built from the same config are twins --
        the property journal replay and follower promotion rest on."""
        build = lambda: build_classed_gateway(
            self.single_policy(), links=1, capacity=CAPACITY,
            holding_time=HOLDING_TIME, seed=11,
        )[0]
        assert self.drive(build(), "only") == self.drive(build(), "only")
