"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.theory.memoryful import ContinuousLoadModel
from repro.traffic.marginals import TruncatedGaussianMarginal
from repro.traffic.rcbr import RcbrSource, paper_rcbr_source


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator; one per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def paper_marginal() -> TruncatedGaussianMarginal:
    """The paper's Gaussian marginal (mean 1, CV 0.3)."""
    return TruncatedGaussianMarginal.from_cv(1.0, 0.3)


@pytest.fixture
def rcbr_source(paper_marginal) -> RcbrSource:
    """The paper's RCBR workload at T_c = 1."""
    return RcbrSource(paper_marginal, correlation_time=1.0)


@pytest.fixture
def paper_source() -> RcbrSource:
    """Convenience alias built via the public factory."""
    return paper_rcbr_source(mean=1.0, cv=0.3, correlation_time=1.0)


@pytest.fixture
def paper_model() -> ContinuousLoadModel:
    """Fig-5 parameter point: n=100, T_h=1000, T_c=1, snr=0.3, memoryless."""
    return ContinuousLoadModel(
        correlation_time=1.0, holding_time_scaled=100.0, snr=0.3, memory=0.0
    )
