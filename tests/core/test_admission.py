"""Tests for the Gaussian certainty-equivalent admission criterion."""

import math

import numpy as np
import pytest

from repro.core.admission import (
    AdmissionCriterion,
    admissible_flow_count,
    admissible_flow_count_alpha,
    overflow_probability_for_count,
)
from repro.core.gaussian import q_function, q_inverse
from repro.errors import ParameterError


class TestClosedForm:
    def test_satisfies_criterion_exactly(self):
        """Eqn (42) must solve eqn (4) with equality."""
        mu, sigma, c, p = 1.0, 0.3, 100.0, 1e-3
        m = admissible_flow_count(mu, sigma, c, p)
        achieved = q_function((c - m * mu) / (sigma * math.sqrt(m)))
        assert achieved == pytest.approx(p, rel=1e-9)

    def test_zero_variance_fills_capacity(self):
        assert admissible_flow_count(2.0, 0.0, 100.0, 1e-3) == pytest.approx(50.0)

    def test_below_capacity_in_means(self):
        m = admissible_flow_count(1.0, 0.3, 100.0, 1e-3)
        assert m < 100.0

    def test_negative_alpha_overbooks(self):
        # Target above 1/2 => alpha < 0 => admit beyond c/mu.
        m = admissible_flow_count_alpha(1.0, 0.3, 100.0, -1.0)
        assert m > 100.0

    def test_heavy_traffic_expansion(self):
        """m* ~ n - (sigma alpha / mu) sqrt(n) for large n (eqn (5))."""
        mu, sigma, p = 1.0, 0.3, 1e-3
        alpha = q_inverse(p)
        for n in [1e4, 1e6]:
            m = admissible_flow_count(mu, sigma, n * mu, p)
            approx = n - sigma * alpha / mu * math.sqrt(n)
            assert m == pytest.approx(approx, abs=5.0)

    def test_vectorized(self):
        ms = admissible_flow_count(1.0, np.array([0.1, 0.3, 0.5]), 100.0, 1e-3)
        assert ms.shape == (3,)
        assert np.all(np.diff(ms) < 0)  # more variance, fewer flows

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(mu=0.0, sigma=0.3, capacity=10.0, p_target=1e-3),
            dict(mu=1.0, sigma=-0.1, capacity=10.0, p_target=1e-3),
            dict(mu=1.0, sigma=0.3, capacity=0.0, p_target=1e-3),
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ParameterError):
            admissible_flow_count(**kwargs)


class TestMonotonicity:
    def test_increasing_in_capacity(self):
        m1 = admissible_flow_count(1.0, 0.3, 50.0, 1e-3)
        m2 = admissible_flow_count(1.0, 0.3, 100.0, 1e-3)
        assert m2 > m1

    def test_decreasing_in_mu(self):
        m1 = admissible_flow_count(1.0, 0.3, 100.0, 1e-3)
        m2 = admissible_flow_count(1.2, 0.3, 100.0, 1e-3)
        assert m2 < m1

    def test_decreasing_in_sigma(self):
        m1 = admissible_flow_count(1.0, 0.2, 100.0, 1e-3)
        m2 = admissible_flow_count(1.0, 0.4, 100.0, 1e-3)
        assert m2 < m1

    def test_increasing_in_target(self):
        # Looser QoS admits more.
        m1 = admissible_flow_count(1.0, 0.3, 100.0, 1e-5)
        m2 = admissible_flow_count(1.0, 0.3, 100.0, 1e-2)
        assert m2 > m1


class TestOverflowForCount:
    def test_inverse_of_admission(self):
        mu, sigma, c, p = 1.0, 0.3, 200.0, 1e-2
        m = admissible_flow_count(mu, sigma, c, p)
        assert overflow_probability_for_count(mu, sigma, c, m) == pytest.approx(
            p, rel=1e-9
        )

    def test_zero_flows(self):
        assert overflow_probability_for_count(1.0, 0.3, 10.0, 0.0) == 0.0

    def test_zero_variance_indicator(self):
        assert overflow_probability_for_count(1.0, 0.0, 10.0, 11.0) == 1.0
        assert overflow_probability_for_count(1.0, 0.0, 10.0, 9.0) == 0.0

    def test_rejects_negative_count(self):
        with pytest.raises(ParameterError):
            overflow_probability_for_count(1.0, 0.3, 10.0, -1.0)

    def test_monotone_in_count(self):
        ms = np.array([50.0, 80.0, 95.0, 110.0])
        ps = overflow_probability_for_count(1.0, 0.3, 100.0, ms)
        assert np.all(np.diff(ps) > 0)


class TestAdmissionCriterion:
    def test_from_target_roundtrip(self):
        crit = AdmissionCriterion.from_target(100.0, 1e-3)
        assert crit.p_target == pytest.approx(1e-3, rel=1e-10)

    def test_admissible_count_matches_function(self):
        crit = AdmissionCriterion.from_target(100.0, 1e-3)
        assert crit.admissible_count(1.0, 0.3) == pytest.approx(
            admissible_flow_count(1.0, 0.3, 100.0, 1e-3)
        )

    def test_admits_boundary(self):
        crit = AdmissionCriterion.from_target(100.0, 1e-3)
        m = crit.admissible_count(1.0, 0.3)
        assert crit.admits(1.0, 0.3, int(m) - 1)
        assert not crit.admits(1.0, 0.3, int(math.ceil(m)))

    def test_slack_sign(self):
        crit = AdmissionCriterion.from_target(100.0, 1e-3)
        assert crit.slack(1.0, 0.3, 0) > 0
        assert crit.slack(1.0, 0.3, 200) < 0

    def test_direct_alpha_construction(self):
        crit = AdmissionCriterion(capacity=100.0, alpha=q_inverse(1e-3))
        ref = AdmissionCriterion.from_target(100.0, 1e-3)
        assert crit.admissible_count(1.0, 0.3) == pytest.approx(
            ref.admissible_count(1.0, 0.3)
        )

    def test_rejects_bad_capacity(self):
        with pytest.raises(ParameterError):
            AdmissionCriterion(capacity=-1.0, alpha=3.0)

    def test_frozen(self):
        crit = AdmissionCriterion.from_target(100.0, 1e-3)
        with pytest.raises(AttributeError):
            crit.capacity = 50.0
