"""Tests for the aggregate-only estimator (Section 7 extension)."""

import math

import numpy as np
import pytest

from repro.core.estimators import AggregateEstimator, cross_section
from repro.errors import ParameterError


class TestConstruction:
    def test_requires_variance_memory(self):
        with pytest.raises(ParameterError):
            AggregateEstimator(variance_memory=0.0)
        with pytest.raises(ParameterError):
            AggregateEstimator(variance_memory=-1.0)
        with pytest.raises(ParameterError):
            AggregateEstimator(variance_memory=1.0, mean_memory=-1.0)


class TestMeanEstimate:
    def test_instantaneous_mean_without_memory(self):
        est = AggregateEstimator(variance_memory=5.0, mean_memory=0.0)
        est.observe(cross_section([1.0, 3.0]))
        assert est.estimate().mu == pytest.approx(2.0)

    def test_smoothed_mean_with_memory(self):
        est = AggregateEstimator(variance_memory=5.0, mean_memory=2.0)
        est.observe(cross_section([1.0, 1.0]))
        est.advance(0.0)
        est.observe(cross_section([3.0, 3.0]))
        est.advance(2.0)  # one time constant: (1 - 1/e) toward 3
        expected = 3.0 * (1.0 - math.exp(-1.0)) + 1.0 * math.exp(-1.0)
        assert est.estimate().mu == pytest.approx(expected, rel=1e-9)


class TestVarianceEstimate:
    def test_constant_aggregate_has_zero_variance(self):
        est = AggregateEstimator(variance_memory=2.0)
        cs = cross_section([1.0, 2.0, 3.0])
        est.observe(cs)
        for t in [1.0, 5.0, 20.0]:
            est.advance(t)
            est.observe(cs)
        assert est.estimate().sigma == pytest.approx(0.0, abs=1e-9)

    def test_recovers_per_flow_variance_from_temporal_fluctuation(self, rng):
        """Feed the true aggregate of n i.i.d. OU-like flows; the inferred
        per-flow sigma must approach the truth."""
        n = 50
        sigma_true = 0.3

        def draw(size):
            # Clip at zero like the traffic sources do: cross_section()
            # rejects negative rates, and at 3.3 sigma the clipping
            # probability (~4e-4) is far inside the test's tolerance.
            return np.clip(1.0 + sigma_true * rng.standard_normal(size), 0.0, None)

        est = AggregateEstimator(variance_memory=50.0)
        rates = draw(n)
        est.observe(cross_section(rates))
        t = 0.0
        for _ in range(20000):
            t += 0.25
            est.advance(t)
            # Renegotiate ~ a quarter of flows each step (T_c ~ 1).
            mask = rng.random(n) < 0.25
            rates = np.where(mask, draw(n), rates)
            est.observe(cross_section(rates))
        out = est.estimate()
        assert out.sigma == pytest.approx(sigma_true, rel=0.25)
        assert out.mu == pytest.approx(1.0, rel=0.05)

    def test_variance_estimate_needs_time_not_flows(self):
        """At t=0 the aggregate-only estimator has seen one sample and must
        report sigma ~ 0 (no information) -- the paper's core warning."""
        est = AggregateEstimator(variance_memory=10.0)
        est.observe(cross_section([0.5, 1.5, 0.7, 1.3]))  # lots of spread
        assert est.estimate().sigma == pytest.approx(0.0, abs=1e-12)


class TestEngineIntegration:
    def test_runs_in_fast_engine(self, paper_source):
        from repro.core.controllers import CertaintyEquivalentController
        from repro.simulation.fast import FastEngine, as_vector_model

        engine = FastEngine(
            model=as_vector_model(paper_source),
            controller=CertaintyEquivalentController(50.0, 1e-2),
            estimator=AggregateEstimator(variance_memory=20.0, mean_memory=20.0),
            capacity=50.0,
            holding_time=200.0,
            dt=0.1,
            rng=np.random.default_rng(4),
        )
        engine.run_until(400.0)
        # Should settle near the admissible count for the true parameters.
        from repro.core.admission import admissible_flow_count

        m_star = admissible_flow_count(
            paper_source.mean, paper_source.std, 50.0, 1e-2
        )
        assert engine.n_flows == pytest.approx(m_star, rel=0.15)

    def test_comparable_to_per_flow_estimator(self, paper_source):
        """End-to-end: aggregate-only and per-flow estimators at the same
        memory deliver similar occupancy and overload."""
        from repro.core.controllers import CertaintyEquivalentController
        from repro.core.estimators import ExponentialMemoryEstimator
        from repro.simulation.fast import FastEngine, as_vector_model

        def run(estimator, seed):
            engine = FastEngine(
                model=as_vector_model(paper_source),
                controller=CertaintyEquivalentController(50.0, 1e-2),
                estimator=estimator,
                capacity=50.0,
                holding_time=200.0,
                dt=0.1,
                rng=np.random.default_rng(seed),
            )
            engine.run_until(100.0)
            engine.reset_statistics()
            engine.run_until(800.0)
            return engine

        per_flow = run(ExponentialMemoryEstimator(20.0), seed=1)
        aggregate = run(AggregateEstimator(20.0, 20.0), seed=2)
        assert aggregate.link.mean_utilization == pytest.approx(
            per_flow.link.mean_utilization, abs=0.04
        )
