"""Tests for the baseline admission controllers (Section 6 comparators)."""

import pytest

from repro.core.admission import admissible_flow_count
from repro.core.baselines import (
    MeasuredSumController,
    PeakRateController,
    PriorSmoothedController,
)
from repro.core.estimators import BandwidthEstimate
from repro.errors import ParameterError


def est(mu=1.0, sigma=0.3, n=50) -> BandwidthEstimate:
    return BandwidthEstimate(mu=mu, sigma=sigma, n=n)


class TestPeakRate:
    def test_target_count(self):
        ctrl = PeakRateController(capacity=100.0, peak_rate=2.0)
        assert ctrl.target_count(est(), 0) == pytest.approx(50.0)

    def test_independent_of_measurements(self):
        ctrl = PeakRateController(capacity=100.0, peak_rate=2.0)
        assert ctrl.target_count(est(mu=9.0), 3) == ctrl.target_count(est(mu=0.1), 90)

    def test_rejects_bad_params(self):
        with pytest.raises(ParameterError):
            PeakRateController(0.0, 2.0)
        with pytest.raises(ParameterError):
            PeakRateController(100.0, -1.0)


class TestMeasuredSum:
    def test_fills_measured_headroom(self):
        ctrl = MeasuredSumController(100.0, utilization_target=0.9, declared_rate=1.0)
        # 50 flows at measured mean 1.0 => headroom 40 declared-rate slots.
        assert ctrl.target_count(est(mu=1.0), 50) == pytest.approx(90.0)

    def test_no_headroom_freezes(self):
        ctrl = MeasuredSumController(100.0, utilization_target=0.9, declared_rate=1.0)
        assert ctrl.target_count(est(mu=2.0), 50) == 50.0  # measured 100 > 90

    def test_under_measurement_admits_more(self):
        ctrl = MeasuredSumController(100.0, utilization_target=0.9, declared_rate=1.0)
        optimistic = ctrl.target_count(est(mu=0.8), 50)
        accurate = ctrl.target_count(est(mu=1.0), 50)
        assert optimistic > accurate

    def test_rejects_bad_utilization(self):
        with pytest.raises(ParameterError):
            MeasuredSumController(100.0, utilization_target=0.0, declared_rate=1.0)
        with pytest.raises(ParameterError):
            MeasuredSumController(100.0, utilization_target=1.1, declared_rate=1.0)


class TestPriorSmoothed:
    def test_zero_weight_is_plain_ce(self):
        ctrl = PriorSmoothedController(100.0, 1e-3, 2.0, 1.0, prior_weight=0.0)
        expected = admissible_flow_count(1.0, 0.3, 100.0, 1e-3)
        assert ctrl.target_count(est(mu=1.0, sigma=0.3), 0) == pytest.approx(expected)

    def test_infinite_weight_pins_to_prior(self):
        ctrl = PriorSmoothedController(100.0, 1e-3, 1.0, 0.3, prior_weight=1e12)
        expected = admissible_flow_count(1.0, 0.3, 100.0, 1e-3)
        # Estimates wildly off; prior dominates.
        assert ctrl.target_count(est(mu=5.0, sigma=2.0), 0) == pytest.approx(
            expected, rel=1e-4
        )

    def test_blending_is_between_extremes(self):
        prior_only = PriorSmoothedController(100.0, 1e-3, 1.0, 0.3, 1e12)
        data_only = PriorSmoothedController(100.0, 1e-3, 1.0, 0.3, 0.0)
        blended = PriorSmoothedController(100.0, 1e-3, 1.0, 0.3, 50.0)
        e = est(mu=1.3, sigma=0.3, n=50)
        lo = min(prior_only.target_count(e, 0), data_only.target_count(e, 0))
        hi = max(prior_only.target_count(e, 0), data_only.target_count(e, 0))
        assert lo <= blended.target_count(e, 0) <= hi

    def test_no_data_uses_prior(self):
        ctrl = PriorSmoothedController(100.0, 1e-3, 1.0, 0.3, prior_weight=0.0)
        expected = admissible_flow_count(1.0, 0.3, 100.0, 1e-3)
        assert ctrl.target_count(est(n=0), 0) == pytest.approx(expected)

    def test_rejects_bad_prior(self):
        with pytest.raises(ParameterError):
            PriorSmoothedController(100.0, 1e-3, -1.0, 0.3, 1.0)
        with pytest.raises(ParameterError):
            PriorSmoothedController(100.0, 1e-3, 1.0, 0.3, -1.0)
