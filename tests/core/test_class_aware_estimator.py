"""Tests for the class-aware estimator (Section 5.4 remedy)."""

import math

import numpy as np
import pytest

from repro.core.estimators import ClassAwareEstimator, CrossSection, cross_section
from repro.errors import ParameterError


def section(rates) -> CrossSection:
    return cross_section(np.asarray(rates, dtype=float))


class TestConstruction:
    def test_requires_positive_memory(self):
        with pytest.raises(ParameterError):
            ClassAwareEstimator(0.0)


class TestClassifiedObservation:
    def test_mixture_mean_preserved(self):
        est = ClassAwareEstimator(memory=5.0)
        est.observe_classified(
            [(0, section([1.0, 1.0])), (1, section([3.0, 3.0]))]
        )
        out = est.estimate()
        assert out.mu == pytest.approx(2.0)
        assert out.n == 4

    def test_within_class_variance_only(self):
        """Two zero-variance classes at different means: the homogeneous
        estimator would report the between-class spread; the class-aware
        one must report sigma ~ 0."""
        est = ClassAwareEstimator(memory=5.0)
        est.observe_classified(
            [(0, section([1.0, 1.0, 1.0])), (1, section([3.0, 3.0, 3.0]))]
        )
        assert est.estimate().sigma == pytest.approx(0.0, abs=1e-12)

    def test_weighted_within_variance(self):
        est = ClassAwareEstimator(memory=5.0)
        low = section([0.9, 1.1])  # var 0.02
        high = section([2.8, 3.2])  # var 0.08
        est.observe_classified([(0, low), (1, high)])
        expected = math.sqrt(0.5 * low.variance + 0.5 * high.variance)
        assert est.estimate().sigma == pytest.approx(expected, rel=1e-9)

    def test_unequal_class_sizes_weighting(self):
        est = ClassAwareEstimator(memory=5.0)
        est.observe_classified(
            [(0, section([1.0] * 3)), (1, section([4.0] * 1))]
        )
        assert est.estimate().mu == pytest.approx((3 * 1.0 + 4.0) / 4.0)

    def test_class_appears_later(self):
        est = ClassAwareEstimator(memory=5.0)
        est.observe_classified([(0, section([1.0, 1.0]))])
        est.advance(1.0)
        est.observe_classified(
            [(0, section([1.0, 1.0])), (1, section([2.0, 2.0]))]
        )
        out = est.estimate()
        assert out.mu == pytest.approx(1.5)

    def test_filters_smooth_over_time(self):
        """A step in one class's mean relaxes exponentially, per class."""
        t_m = 4.0
        est = ClassAwareEstimator(memory=t_m)
        est.observe_classified([(0, section([1.0, 1.0]))])
        est.advance(0.0)
        est.observe_classified([(0, section([2.0, 2.0]))])
        est.advance(t_m)  # one time constant
        decay = math.exp(-1.0)
        expected = 2.0 * (1 - decay) + 1.0 * decay
        assert est.estimate().mu == pytest.approx(expected, rel=1e-9)

    def test_plain_observe_fallback(self):
        """Without classification the estimator degrades gracefully to the
        instantaneous homogeneous cross-section."""
        est = ClassAwareEstimator(memory=5.0)
        est.observe(section([1.0, 3.0]))
        out = est.estimate()
        assert out.mu == pytest.approx(2.0)
        assert out.sigma == pytest.approx(math.sqrt(2.0))

    def test_reset_clears_filters(self):
        est = ClassAwareEstimator(memory=5.0)
        est.observe_classified([(0, section([1.0, 1.0]))])
        est.reset()
        assert est._filters == {}


class TestClassEmptiesMidEpoch:
    """Regression: a class draining to zero flows mid-epoch must not emit
    a stale or NaN cross-section into the pooled estimate."""

    def empty(self) -> CrossSection:
        return cross_section(np.array([], dtype=float))

    def test_pooled_estimate_stays_finite_and_excludes_empty_class(self):
        est = ClassAwareEstimator(memory=5.0)
        est.observe_classified(
            [(0, section([1.0] * 4)), (1, section([2.0] * 4))]
        )
        est.advance(1.0)
        est.observe_classified([(0, section([1.0] * 4)), (1, self.empty())])
        out = est.estimate()
        assert math.isfinite(out.mu) and math.isfinite(out.sigma)
        # The emptied class contributes nothing to the pooled estimate.
        assert out.mu == pytest.approx(1.0)

    def test_emptied_class_filter_holds_last_value(self):
        est = ClassAwareEstimator(memory=5.0)
        est.observe_classified([(1, section([2.0] * 4))])
        est.advance(1.0)
        est.observe_classified([(0, section([1.0] * 4)), (1, self.empty())])
        held = est.class_estimate(1)
        assert held is not None
        assert math.isfinite(held.mu)
        # Held, not dragged toward a meaningless zero by the empty epoch.
        assert held.mu == pytest.approx(2.0, rel=1e-6)

    def test_unmeasured_class_falls_back_to_prior(self):
        est = ClassAwareEstimator(memory=5.0)
        est.set_class_prior(7, mu=3.0, sigma=0.5)
        out = est.class_estimate(7)
        assert out is not None
        assert out.mu == pytest.approx(3.0)
        assert out.sigma == pytest.approx(0.5)
        assert out.n == 0  # marks the estimate as prior, not measured

    def test_never_seen_class_without_prior_is_none(self):
        est = ClassAwareEstimator(memory=5.0)
        assert est.class_estimate(99) is None

    def test_whole_system_empty_decays_like_homogeneous(self):
        """When *every* class is empty each filter decays toward zero in
        lockstep with the homogeneous estimator (single-class parity)."""
        from repro.core.estimators import ExponentialMemoryEstimator

        bank = ClassAwareEstimator(memory=4.0)
        homogeneous = ExponentialMemoryEstimator(4.0)
        busy = section([2.0] * 3)
        bank.observe_classified([(0, busy)])
        homogeneous.observe(busy)
        for t in (1.0, 2.0, 3.0):
            bank.advance(t)
            homogeneous.advance(t)
            bank.observe_classified([(0, self.empty())])
            homogeneous.observe(self.empty())
            held = bank.class_estimate(0)
            expected = homogeneous.estimate()
            assert held.mu == expected.mu
            assert held.sigma == expected.sigma


class TestEndToEndBiasRemoval:
    def test_recovers_utilization_on_mixture(self, rng):
        """On a heterogeneous workload the class-aware MBAC must carry more
        traffic than the homogeneity-assuming one while keeping QoS."""
        from repro.core.controllers import CertaintyEquivalentController
        from repro.core.estimators import ExponentialMemoryEstimator
        from repro.simulation.fast import FastEngine, as_vector_model
        from repro.traffic.heterogeneous import HeterogeneousPopulation
        from repro.traffic.marginals import TruncatedGaussianMarginal
        from repro.traffic.rcbr import RcbrSource

        population = HeterogeneousPopulation(
            [
                RcbrSource(TruncatedGaussianMarginal.from_cv(0.4, 0.3), 1.0),
                RcbrSource(TruncatedGaussianMarginal.from_cv(1.6, 0.3), 1.0),
            ],
            [0.5, 0.5],
        )

        def run(estimator, seed):
            engine = FastEngine(
                model=as_vector_model(population),
                controller=CertaintyEquivalentController(100.0, 1e-2),
                estimator=estimator,
                capacity=100.0,
                holding_time=200.0,
                dt=0.1,
                rng=np.random.default_rng(seed),
            )
            engine.run_until(200.0)
            engine.reset_statistics()
            engine.run_until(1000.0)
            return engine

        homogeneous = run(ExponentialMemoryEstimator(20.0), seed=1)
        aware = run(ClassAwareEstimator(20.0), seed=2)
        assert aware.link.mean_utilization > homogeneous.link.mean_utilization + 0.03
        # The class-aware sigma estimate sits near the within-class value.
        within = population.moments.within_class_std
        assert aware.estimator.estimate().sigma == pytest.approx(within, rel=0.2)
