"""Tests for the class-aware estimator (Section 5.4 remedy)."""

import math

import numpy as np
import pytest

from repro.core.estimators import ClassAwareEstimator, CrossSection, cross_section
from repro.errors import ParameterError


def section(rates) -> CrossSection:
    return cross_section(np.asarray(rates, dtype=float))


class TestConstruction:
    def test_requires_positive_memory(self):
        with pytest.raises(ParameterError):
            ClassAwareEstimator(0.0)


class TestClassifiedObservation:
    def test_mixture_mean_preserved(self):
        est = ClassAwareEstimator(memory=5.0)
        est.observe_classified(
            [(0, section([1.0, 1.0])), (1, section([3.0, 3.0]))]
        )
        out = est.estimate()
        assert out.mu == pytest.approx(2.0)
        assert out.n == 4

    def test_within_class_variance_only(self):
        """Two zero-variance classes at different means: the homogeneous
        estimator would report the between-class spread; the class-aware
        one must report sigma ~ 0."""
        est = ClassAwareEstimator(memory=5.0)
        est.observe_classified(
            [(0, section([1.0, 1.0, 1.0])), (1, section([3.0, 3.0, 3.0]))]
        )
        assert est.estimate().sigma == pytest.approx(0.0, abs=1e-12)

    def test_weighted_within_variance(self):
        est = ClassAwareEstimator(memory=5.0)
        low = section([0.9, 1.1])  # var 0.02
        high = section([2.8, 3.2])  # var 0.08
        est.observe_classified([(0, low), (1, high)])
        expected = math.sqrt(0.5 * low.variance + 0.5 * high.variance)
        assert est.estimate().sigma == pytest.approx(expected, rel=1e-9)

    def test_unequal_class_sizes_weighting(self):
        est = ClassAwareEstimator(memory=5.0)
        est.observe_classified(
            [(0, section([1.0] * 3)), (1, section([4.0] * 1))]
        )
        assert est.estimate().mu == pytest.approx((3 * 1.0 + 4.0) / 4.0)

    def test_class_appears_later(self):
        est = ClassAwareEstimator(memory=5.0)
        est.observe_classified([(0, section([1.0, 1.0]))])
        est.advance(1.0)
        est.observe_classified(
            [(0, section([1.0, 1.0])), (1, section([2.0, 2.0]))]
        )
        out = est.estimate()
        assert out.mu == pytest.approx(1.5)

    def test_filters_smooth_over_time(self):
        """A step in one class's mean relaxes exponentially, per class."""
        t_m = 4.0
        est = ClassAwareEstimator(memory=t_m)
        est.observe_classified([(0, section([1.0, 1.0]))])
        est.advance(0.0)
        est.observe_classified([(0, section([2.0, 2.0]))])
        est.advance(t_m)  # one time constant
        decay = math.exp(-1.0)
        expected = 2.0 * (1 - decay) + 1.0 * decay
        assert est.estimate().mu == pytest.approx(expected, rel=1e-9)

    def test_plain_observe_fallback(self):
        """Without classification the estimator degrades gracefully to the
        instantaneous homogeneous cross-section."""
        est = ClassAwareEstimator(memory=5.0)
        est.observe(section([1.0, 3.0]))
        out = est.estimate()
        assert out.mu == pytest.approx(2.0)
        assert out.sigma == pytest.approx(math.sqrt(2.0))

    def test_reset_clears_filters(self):
        est = ClassAwareEstimator(memory=5.0)
        est.observe_classified([(0, section([1.0, 1.0]))])
        est.reset()
        assert est._filters == {}


class TestEndToEndBiasRemoval:
    def test_recovers_utilization_on_mixture(self, rng):
        """On a heterogeneous workload the class-aware MBAC must carry more
        traffic than the homogeneity-assuming one while keeping QoS."""
        from repro.core.controllers import CertaintyEquivalentController
        from repro.core.estimators import ExponentialMemoryEstimator
        from repro.simulation.fast import FastEngine, as_vector_model
        from repro.traffic.heterogeneous import HeterogeneousPopulation
        from repro.traffic.marginals import TruncatedGaussianMarginal
        from repro.traffic.rcbr import RcbrSource

        population = HeterogeneousPopulation(
            [
                RcbrSource(TruncatedGaussianMarginal.from_cv(0.4, 0.3), 1.0),
                RcbrSource(TruncatedGaussianMarginal.from_cv(1.6, 0.3), 1.0),
            ],
            [0.5, 0.5],
        )

        def run(estimator, seed):
            engine = FastEngine(
                model=as_vector_model(population),
                controller=CertaintyEquivalentController(100.0, 1e-2),
                estimator=estimator,
                capacity=100.0,
                holding_time=200.0,
                dt=0.1,
                rng=np.random.default_rng(seed),
            )
            engine.run_until(200.0)
            engine.reset_statistics()
            engine.run_until(1000.0)
            return engine

        homogeneous = run(ExponentialMemoryEstimator(20.0), seed=1)
        aware = run(ClassAwareEstimator(20.0), seed=2)
        assert aware.link.mean_utilization > homogeneous.link.mean_utilization + 0.03
        # The class-aware sigma estimate sits near the within-class value.
        within = population.moments.within_class_std
        assert aware.estimator.estimate().sigma == pytest.approx(within, rel=0.2)
