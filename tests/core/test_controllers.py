"""Tests for the admission controllers."""

import math

import numpy as np
import pytest

from repro.core.admission import admissible_flow_count
from repro.core.controllers import (
    AdmissionController,
    CertaintyEquivalentController,
    PerfectKnowledgeController,
)
from repro.core.estimators import BandwidthEstimate
from repro.errors import ParameterError


def est(mu=1.0, sigma=0.3, n=100) -> BandwidthEstimate:
    return BandwidthEstimate(mu=mu, sigma=sigma, n=n)


class TestPerfectKnowledge:
    def test_target_is_m_star(self):
        ctrl = PerfectKnowledgeController(1.0, 0.3, 100.0, 1e-3)
        expected = admissible_flow_count(1.0, 0.3, 100.0, 1e-3)
        assert ctrl.m_star == pytest.approx(expected)
        assert ctrl.target_count(est(), 10) == pytest.approx(expected)

    def test_ignores_estimates(self):
        ctrl = PerfectKnowledgeController(1.0, 0.3, 100.0, 1e-3)
        assert ctrl.target_count(est(mu=5.0, sigma=2.0), 0) == ctrl.m_star

    def test_slack_counts_down(self):
        ctrl = PerfectKnowledgeController(1.0, 0.3, 100.0, 1e-3)
        m = int(math.floor(ctrl.m_star))
        assert ctrl.admission_slack(est(), 0) == m
        assert ctrl.admission_slack(est(), m) == 0
        assert ctrl.admission_slack(est(), m + 5) == 0  # never negative

    def test_rejects_bad_parameters(self):
        with pytest.raises(ParameterError):
            PerfectKnowledgeController(-1.0, 0.3, 100.0, 1e-3)


class TestCertaintyEquivalent:
    def test_uses_estimates(self):
        ctrl = CertaintyEquivalentController(100.0, 1e-3)
        low = ctrl.target_count(est(mu=1.2), 0)
        high = ctrl.target_count(est(mu=0.8), 0)
        assert high > low

    def test_matches_closed_form(self):
        ctrl = CertaintyEquivalentController(100.0, 1e-3)
        assert ctrl.target_count(est(mu=1.0, sigma=0.3), 0) == pytest.approx(
            admissible_flow_count(1.0, 0.3, 100.0, 1e-3)
        )

    def test_nonpositive_mean_freezes_admission(self):
        ctrl = CertaintyEquivalentController(100.0, 1e-3)
        assert ctrl.target_count(est(mu=0.0), 7) == 7.0
        assert ctrl.admission_slack(est(mu=0.0), 7) == 0

    def test_min_sigma_floor(self):
        ctrl = CertaintyEquivalentController(100.0, 1e-3, min_sigma=0.5)
        floored = ctrl.target_count(est(sigma=0.0), 0)
        reference = admissible_flow_count(1.0, 0.5, 100.0, 1e-3)
        assert floored == pytest.approx(reference)

    def test_requires_exactly_one_target_form(self):
        with pytest.raises(ParameterError):
            CertaintyEquivalentController(100.0)
        with pytest.raises(ParameterError):
            CertaintyEquivalentController(100.0, 1e-3, alpha=3.0)

    def test_alpha_and_p_agree(self):
        from repro.core.gaussian import q_inverse

        via_p = CertaintyEquivalentController(100.0, 1e-3)
        via_alpha = CertaintyEquivalentController(100.0, alpha=q_inverse(1e-3))
        assert via_p.target_count(est(), 0) == pytest.approx(
            via_alpha.target_count(est(), 0)
        )

    def test_rejects_negative_min_sigma(self):
        with pytest.raises(ParameterError):
            CertaintyEquivalentController(100.0, 1e-3, min_sigma=-0.1)

    def test_p_ce_property(self):
        ctrl = CertaintyEquivalentController(100.0, 1e-4)
        assert ctrl.p_ce == pytest.approx(1e-4, rel=1e-9)


class TestBatchTarget:
    """target_count_batch must agree element-wise with target_count."""

    def test_certainty_equivalent_matches_scalar(self):
        ctrl = CertaintyEquivalentController(100.0, 1e-3, min_sigma=0.2)
        mu = np.array([1.0, 0.8, 1.2, 0.0, -0.5, 1.0])
        sigma = np.array([0.3, 0.5, 0.0, 0.3, 0.3, 0.1])  # incl. < min_sigma
        n = np.array([0, 5, 10, 7, 3, 50])
        batch = ctrl.target_count_batch(mu, sigma, n)
        for i in range(len(mu)):
            estimate = BandwidthEstimate(mu=mu[i], sigma=sigma[i], n=int(n[i]))
            assert batch[i] == pytest.approx(
                ctrl.target_count(estimate, int(n[i]))
            )

    def test_nonpositive_mean_freezes_at_occupancy(self):
        ctrl = CertaintyEquivalentController(100.0, 1e-3)
        batch = ctrl.target_count_batch([0.0, -1.0], [0.3, 0.3], [7, 12])
        assert batch.tolist() == [7.0, 12.0]

    def test_perfect_knowledge_is_constant(self):
        ctrl = PerfectKnowledgeController(1.0, 0.3, 100.0, 1e-3)
        batch = ctrl.target_count_batch(
            [5.0, 1.0, 0.0], [2.0, 0.3, 0.0], [0, 10, 99]
        )
        assert batch.shape == (3,)
        assert np.allclose(batch, ctrl.m_star)

    def test_broadcasting_scalar_estimate_over_occupancies(self):
        ctrl = CertaintyEquivalentController(100.0, 1e-3)
        occupancies = np.arange(4)
        batch = ctrl.target_count_batch(1.0, 0.3, occupancies)
        assert batch.shape == (4,)
        expected = ctrl.target_count(est(), 0)
        assert np.allclose(batch, expected)

    def test_base_class_fallback_loop(self):
        class Stub(AdmissionController):
            name = "stub"

            def target_count(self, estimate, n_current):
                return estimate.mu * 10.0 + n_current

        batch = Stub().target_count_batch([1.0, 2.0], [0.0, 0.0], [3, 4])
        assert batch.tolist() == [13.0, 24.0]


class TestAdjustedTarget:
    def test_more_conservative_than_plain(self):
        plain = CertaintyEquivalentController(100.0, 1e-3)
        adjusted = CertaintyEquivalentController.with_adjusted_target(
            100.0,
            1e-3,
            memory=10.0,
            correlation_time=1.0,
            holding_time_scaled=100.0,
            snr=0.3,
            formula="separation",
        )
        assert adjusted.target_count(est(), 0) < plain.target_count(est(), 0)
        assert adjusted.name == "adjusted-target"

    def test_large_memory_approaches_plain(self):
        plain = CertaintyEquivalentController(100.0, 1e-3)
        adjusted = CertaintyEquivalentController.with_adjusted_target(
            100.0,
            1e-3,
            memory=1e5,
            correlation_time=1.0,
            holding_time_scaled=100.0,
            snr=0.3,
            formula="separation",
        )
        # With huge memory the adjustment becomes mild (alpha_ce -> ~alpha_q).
        gap = plain.target_count(est(), 0) - adjusted.target_count(est(), 0)
        assert 0.0 <= gap < 3.0
