"""Tests for the measurement estimators."""

import math

import numpy as np
import pytest

from repro.core.estimators import (
    CrossSection,
    ExponentialMemoryEstimator,
    MemorylessEstimator,
    PerfectEstimator,
    SlidingWindowEstimator,
    cross_section,
    make_estimator,
)
from repro.errors import EstimatorError, ParameterError


def section(rates) -> CrossSection:
    return cross_section(np.asarray(rates, dtype=float))


class TestCrossSection:
    def test_basic_moments(self):
        cs = section([1.0, 2.0, 3.0])
        assert cs.n == 3
        assert cs.mean == pytest.approx(2.0)
        assert cs.second_moment == pytest.approx(14.0 / 3.0)
        assert cs.variance == pytest.approx(1.0)  # unbiased

    def test_empty(self):
        cs = section([])
        assert cs.n == 0 and cs.mean == 0.0 and cs.variance == 0.0

    def test_single_flow_zero_variance(self):
        cs = section([5.0])
        assert cs.n == 1 and cs.variance == 0.0

    def test_matches_numpy(self, rng):
        rates = rng.uniform(0.5, 2.0, size=37)
        cs = section(rates)
        assert cs.mean == pytest.approx(np.mean(rates))
        assert cs.variance == pytest.approx(np.var(rates, ddof=1))

    def test_rejects_nan_rate(self):
        with pytest.raises(EstimatorError, match="finite"):
            section([1.0, math.nan, 2.0])

    def test_rejects_positive_infinity(self):
        with pytest.raises(EstimatorError, match="finite"):
            section([1.0, math.inf])

    def test_rejects_negative_infinity(self):
        with pytest.raises(EstimatorError, match="finite"):
            section([-math.inf, 1.0])

    def test_rejects_negative_rate(self):
        with pytest.raises(EstimatorError, match="non-negative"):
            section([1.0, -0.25])

    def test_zero_rate_is_valid(self):
        cs = section([0.0, 2.0])  # silent flows are legitimate
        assert cs.n == 2
        assert cs.mean == pytest.approx(1.0)


class TestMemoryless:
    def test_estimate_is_current_section(self):
        est = MemorylessEstimator()
        est.observe(section([1.0, 3.0]))
        out = est.estimate()
        assert out.mu == pytest.approx(2.0)
        assert out.sigma == pytest.approx(math.sqrt(2.0))
        assert out.n == 2

    def test_raises_before_data(self):
        with pytest.raises(EstimatorError):
            MemorylessEstimator().estimate()

    def test_estimate_or_none_probe(self):
        est = MemorylessEstimator()
        assert est.estimate_or_none() is None  # no exception on empty
        est.observe(section([1.0, 3.0]))
        probed = est.estimate_or_none()
        assert probed is not None
        assert probed.mu == pytest.approx(2.0)

    def test_time_does_not_matter(self):
        est = MemorylessEstimator()
        est.observe(section([1.0, 2.0]))
        est.advance(100.0)
        est.observe(section([4.0, 6.0]))
        assert est.estimate().mu == pytest.approx(5.0)

    def test_clock_monotonicity_enforced(self):
        est = MemorylessEstimator()
        est.advance(5.0)
        with pytest.raises(EstimatorError):
            est.advance(4.0)

    def test_reset(self):
        est = MemorylessEstimator()
        est.observe(section([1.0]))
        est.reset(10.0)
        assert est.time == 10.0
        with pytest.raises(EstimatorError):
            est.estimate()


class TestExponentialMemory:
    def test_rejects_nonpositive_memory(self):
        with pytest.raises(ParameterError):
            ExponentialMemoryEstimator(0.0)
        with pytest.raises(ParameterError):
            ExponentialMemoryEstimator(-1.0)

    def test_constant_signal_is_fixed_point(self):
        est = ExponentialMemoryEstimator(memory=2.0)
        cs = section([1.0, 1.5, 0.5])
        est.observe(cs)
        for t in [1.0, 5.0, 20.0]:
            est.advance(t)
            est.observe(cs)
        out = est.estimate()
        assert out.mu == pytest.approx(cs.mean, rel=1e-12)
        assert out.sigma == pytest.approx(math.sqrt(cs.variance), rel=1e-9)

    def test_initialization_to_first_observation(self):
        est = ExponentialMemoryEstimator(memory=10.0)
        est.observe(section([2.0, 4.0]))
        out = est.estimate()
        assert out.mu == pytest.approx(3.0)

    def test_exact_exponential_relaxation(self):
        """A step change must relax with exactly exp(-dt/T_m)."""
        t_m = 3.0
        est = ExponentialMemoryEstimator(memory=t_m)
        est.observe(section([1.0, 1.0, 1.0]))  # filter pinned at mean 1
        est.advance(1e-9)
        est.observe(section([2.0, 2.0, 2.0]))  # step to mean 2
        dt = 4.2
        est.advance(1e-9 + dt)
        decay = math.exp(-dt / t_m)
        expected = 2.0 * (1.0 - decay) + 1.0 * decay
        assert est.estimate().mu == pytest.approx(expected, rel=1e-9)

    def test_split_advance_equals_single_advance(self):
        """Advancing in two steps must equal one combined step (semigroup)."""
        def run(splits):
            est = ExponentialMemoryEstimator(memory=5.0)
            est.observe(section([1.0, 3.0]))
            est.advance(0.0)
            est.observe(section([10.0, 12.0]))
            t = 0.0
            for dt in splits:
                t += dt
                est.advance(t)
            return est.estimate().mu

        assert run([7.0]) == pytest.approx(run([2.0, 1.5, 3.5]), rel=1e-12)

    def test_variance_includes_mean_wander(self):
        """The filtered variance must pick up fluctuations of the
        cross-sectional mean itself (the (m^2*h) - mu_m^2 term)."""
        est = ExponentialMemoryEstimator(memory=1.0)
        # Alternate between two zero-variance sections with different means.
        est.observe(section([1.0, 1.0]))
        t = 0.0
        for _ in range(200):
            t += 0.5
            est.advance(t)
            mean = 2.0 if (int(t * 2) % 2 == 0) else 1.0
            est.observe(section([mean, mean]))
        out = est.estimate()
        assert out.sigma > 0.1  # wandering mean shows up as variance

    def test_memoryless_limit(self):
        """Tiny T_m tracks the instantaneous section closely."""
        est = ExponentialMemoryEstimator(memory=1e-6)
        est.observe(section([1.0, 2.0]))
        est.advance(1.0)
        est.observe(section([5.0, 7.0]))
        est.advance(2.0)
        assert est.estimate().mu == pytest.approx(6.0, rel=1e-6)


class TestSlidingWindow:
    def test_rejects_nonpositive_window(self):
        with pytest.raises(ParameterError):
            SlidingWindowEstimator(0.0)

    def test_uniform_average(self):
        est = SlidingWindowEstimator(window=10.0)
        est.observe(section([1.0, 1.0]))
        est.advance(5.0)  # mean 1 held for 5
        est.observe(section([3.0, 3.0]))
        est.advance(10.0)  # mean 3 held for 5
        assert est.estimate().mu == pytest.approx(2.0)

    def test_eviction(self):
        est = SlidingWindowEstimator(window=2.0)
        est.observe(section([1.0, 1.0]))
        est.advance(10.0)  # long stretch at mean 1
        est.observe(section([5.0, 5.0]))
        est.advance(12.0)  # exactly one full window at mean 5
        assert est.estimate().mu == pytest.approx(5.0, rel=1e-9)

    def test_partial_eviction_prorates(self):
        est = SlidingWindowEstimator(window=4.0)
        est.observe(section([0.0, 0.0]))
        est.advance(2.0)
        est.observe(section([4.0, 4.0]))
        est.advance(5.0)  # window covers 1 unit of mean 0, 3 units of mean 4
        assert est.estimate().mu == pytest.approx(3.0, rel=1e-9)

    def test_before_any_elapsed_time(self):
        est = SlidingWindowEstimator(window=5.0)
        est.observe(section([2.0, 4.0]))
        assert est.estimate().mu == pytest.approx(3.0)


class TestPerfect:
    def test_returns_truth(self):
        est = PerfectEstimator(mu=1.5, sigma=0.4)
        est.observe(section([9.0, 9.0]))
        out = est.estimate()
        assert out.mu == 1.5 and out.sigma == 0.4

    def test_works_without_observation(self):
        est = PerfectEstimator(mu=1.0, sigma=0.2)
        assert est.estimate().mu == 1.0

    def test_rejects_bad_truth(self):
        with pytest.raises(ParameterError):
            PerfectEstimator(mu=0.0, sigma=0.1)
        with pytest.raises(ParameterError):
            PerfectEstimator(mu=1.0, sigma=-0.1)


class TestFactory:
    def test_none_is_memoryless(self):
        assert isinstance(make_estimator(None), MemorylessEstimator)
        assert isinstance(make_estimator(0.0), MemorylessEstimator)

    def test_positive_is_exponential(self):
        est = make_estimator(3.0)
        assert isinstance(est, ExponentialMemoryEstimator)
        assert est.memory == 3.0

    def test_sliding_shape(self):
        assert isinstance(
            make_estimator(3.0, window_shape="sliding"), SlidingWindowEstimator
        )

    def test_rejects_negative(self):
        with pytest.raises(ParameterError):
            make_estimator(-1.0)

    def test_rejects_unknown_shape(self):
        with pytest.raises(ParameterError):
            make_estimator(1.0, window_shape="boxcar")
