"""Tests for the Gaussian tail toolkit."""

import math

import numpy as np
import pytest

from repro.core.gaussian import (
    log_q_function,
    phi,
    q_function,
    q_inverse,
    q_ratio_approx,
)
from repro.errors import ParameterError


class TestPhi:
    def test_peak_value(self):
        assert phi(0.0) == pytest.approx(1.0 / math.sqrt(2.0 * math.pi))

    def test_symmetry(self):
        assert phi(1.7) == pytest.approx(phi(-1.7))

    def test_integrates_to_one(self):
        x = np.linspace(-10, 10, 20001)
        assert np.trapezoid(phi(x), x) == pytest.approx(1.0, abs=1e-9)

    def test_array_shape(self):
        out = phi(np.zeros((3, 4)))
        assert out.shape == (3, 4)

    def test_scalar_returns_float(self):
        assert isinstance(phi(0.5), float)


class TestQFunction:
    def test_at_zero(self):
        assert q_function(0.0) == pytest.approx(0.5)

    def test_known_value(self):
        # Q(1.96) ~ 0.025 (the classical two-sided 95% point)
        assert q_function(1.959963984540054) == pytest.approx(0.025, rel=1e-9)

    def test_complement(self):
        x = 0.83
        assert q_function(x) + q_function(-x) == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        xs = np.linspace(-5, 5, 101)
        qs = q_function(xs)
        assert np.all(np.diff(qs) < 0)

    def test_deep_tail_accuracy(self):
        # Q(10) = 7.619...e-24 (reference value from high-precision tables)
        assert q_function(10.0) == pytest.approx(7.61985e-24, rel=1e-4)

    def test_array(self):
        out = q_function([0.0, 1.0])
        assert out.shape == (2,)


class TestLogQ:
    def test_matches_direct_in_bulk(self):
        for x in [0.0, 1.0, 3.0, 8.0]:
            assert log_q_function(x) == pytest.approx(math.log(q_function(x)), rel=1e-10)

    def test_finite_in_deep_tail(self):
        # Direct Q(40) underflows double precision entirely.
        val = log_q_function(40.0)
        assert math.isfinite(val)
        # log Q(x) ~ -x^2/2 - log(x sqrt(2pi))
        expected = -0.5 * 40.0**2 - math.log(40.0 * math.sqrt(2 * math.pi))
        assert val == pytest.approx(expected, rel=1e-3)


class TestQInverse:
    @pytest.mark.parametrize("p", [0.4, 0.1, 1e-3, 1e-9, 0.9])
    def test_roundtrip(self, p):
        assert q_function(q_inverse(p)) == pytest.approx(p, rel=1e-10)

    def test_half_maps_to_zero(self):
        assert q_inverse(0.5) == pytest.approx(0.0, abs=1e-12)

    def test_rejects_boundaries(self):
        with pytest.raises(ParameterError):
            q_inverse(0.0)
        with pytest.raises(ParameterError):
            q_inverse(1.0)
        with pytest.raises(ParameterError):
            q_inverse(-0.1)

    def test_array_roundtrip(self):
        ps = np.array([0.3, 0.01, 1e-5])
        np.testing.assert_allclose(q_function(q_inverse(ps)), ps, rtol=1e-10)

    def test_alpha_for_paper_target(self):
        # alpha_q for p_q = 1e-3 is ~3.09 (used throughout the paper).
        assert q_inverse(1e-3) == pytest.approx(3.0902, abs=1e-3)


class TestQRatioApprox:
    def test_close_to_q_in_tail(self):
        # phi(x)/x over Q(x) -> 1 as x grows.
        for x, tol in [(3.0, 0.15), (6.0, 0.05), (10.0, 0.02)]:
            assert q_ratio_approx(x) / q_function(x) == pytest.approx(1.0, abs=tol)

    def test_is_upper_bound(self):
        xs = np.linspace(0.5, 10.0, 50)
        assert np.all(q_ratio_approx(xs) >= q_function(xs))

    def test_rejects_nonpositive(self):
        with pytest.raises(ParameterError):
            q_ratio_approx(0.0)
