"""Tests for the memory-sizing rules."""

import math

import pytest

from repro.core.memory import (
    critical_time_scale,
    recommended_memory,
    scaled_holding_time,
    system_size,
)
from repro.errors import ParameterError


class TestSystemSize:
    def test_basic(self):
        assert system_size(100.0, 1.0) == 100.0
        assert system_size(100.0, 2.0) == 50.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ParameterError):
            system_size(0.0, 1.0)
        with pytest.raises(ParameterError):
            system_size(100.0, 0.0)


class TestCriticalTimeScale:
    def test_definition(self):
        assert critical_time_scale(1000.0, 100.0) == pytest.approx(100.0)

    def test_scales_with_sqrt_n(self):
        t1 = critical_time_scale(1000.0, 100.0)
        t2 = critical_time_scale(1000.0, 400.0)
        assert t1 / t2 == pytest.approx(2.0)

    def test_alias(self):
        assert scaled_holding_time is critical_time_scale

    def test_rejects_nonpositive(self):
        with pytest.raises(ParameterError):
            critical_time_scale(-1.0, 100.0)


class TestRecommendedMemory:
    def test_default_is_critical_scale(self):
        assert recommended_memory(1000.0, 100.0) == pytest.approx(
            1000.0 / math.sqrt(100.0)
        )

    def test_fraction(self):
        assert recommended_memory(1000.0, 100.0, fraction=0.5) == pytest.approx(50.0)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ParameterError):
            recommended_memory(1000.0, 100.0, fraction=0.0)
