"""Tests for the utility-based QoS extension."""

import math

import numpy as np
import pytest

from repro.core.gaussian import q_function
from repro.core.utility import (
    ConcaveUtility,
    LinearUtility,
    StepUtility,
    UtilityMeter,
    gaussian_utility_loss,
)
from repro.errors import ParameterError


class TestUtilityFunctions:
    @pytest.mark.parametrize(
        "utility",
        [StepUtility(), LinearUtility(), ConcaveUtility(2.0), ConcaveUtility(8.0)],
        ids=["step", "linear", "concave2", "concave8"],
    )
    def test_normalization(self, utility):
        assert utility(1.0) == pytest.approx(1.0)
        assert 0.0 <= utility(0.0) <= 1.0 + 1e-12

    @pytest.mark.parametrize(
        "utility",
        [StepUtility(), LinearUtility(), ConcaveUtility(4.0)],
        ids=["step", "linear", "concave"],
    )
    def test_monotone(self, utility):
        grid = np.linspace(0.0, 1.0, 101)
        values = utility(grid)
        assert np.all(np.diff(values) >= -1e-12)

    def test_step_threshold(self):
        u = StepUtility(threshold=0.8)
        assert u(0.79) == 0.0
        assert u(0.81) == 1.0

    def test_linear_is_identity(self):
        assert LinearUtility()(0.37) == pytest.approx(0.37)

    def test_concave_dominates_linear(self):
        """Concavity: U(g) >= g on (0, 1)."""
        u = ConcaveUtility(4.0)
        grid = np.linspace(0.01, 0.99, 50)
        assert np.all(u(grid) >= grid)

    def test_more_curvature_more_adaptive(self):
        mild, sharp = ConcaveUtility(1.0), ConcaveUtility(8.0)
        assert sharp(0.5) > mild(0.5)

    def test_domain_clipping(self):
        assert LinearUtility()(1.7) == 1.0
        assert LinearUtility()(-0.3) == 0.0

    def test_loss_complement(self):
        u = LinearUtility()
        assert u.loss(0.3) == pytest.approx(0.7)

    def test_validation(self):
        with pytest.raises(ParameterError):
            StepUtility(threshold=0.0)
        with pytest.raises(ParameterError):
            ConcaveUtility(curvature=0.0)


class TestUtilityMeter:
    def test_no_loss_under_capacity(self):
        meter = UtilityMeter(10.0, LinearUtility())
        meter.accumulate(8.0, 5.0)
        assert meter.mean_utility_loss == 0.0

    def test_step_meter_equals_overload_time(self):
        meter = UtilityMeter(10.0, StepUtility())
        meter.accumulate(12.0, 1.0)
        meter.accumulate(8.0, 3.0)
        assert meter.mean_utility_loss == pytest.approx(0.25)

    def test_linear_meter_value(self):
        meter = UtilityMeter(10.0, LinearUtility())
        meter.accumulate(20.0, 1.0)  # delivered fraction 0.5, loss 0.5
        assert meter.mean_utility_loss == pytest.approx(0.5)

    def test_elastic_loses_less_than_step(self):
        step = UtilityMeter(10.0, StepUtility())
        linear = UtilityMeter(10.0, LinearUtility())
        for aggregate, duration in [(10.5, 1.0), (9.0, 2.0), (11.0, 0.5)]:
            step.accumulate(aggregate, duration)
            linear.accumulate(aggregate, duration)
        assert linear.mean_utility_loss < 0.2 * step.mean_utility_loss

    def test_reset(self):
        meter = UtilityMeter(10.0, StepUtility())
        meter.accumulate(12.0, 1.0)
        meter.reset_statistics()
        assert meter.mean_utility_loss == 0.0
        assert meter.observed_time == 0.0

    def test_validation(self):
        with pytest.raises(ParameterError):
            UtilityMeter(0.0, StepUtility())
        meter = UtilityMeter(1.0, StepUtility())
        with pytest.raises(ParameterError):
            meter.accumulate(1.0, -1.0)


class TestGaussianUtilityLoss:
    def test_step_recovers_overflow_probability(self):
        """With the step utility the metric is exactly Q((c - m)/s)."""
        c, m, s = 100.0, 95.0, 3.0
        loss = gaussian_utility_loss(StepUtility(), capacity=c, mean=m, std=s)
        # Tolerance set by the trapezoid cell straddling the step's jump
        # discontinuity at S = c (~ density(c) * grid spacing / 2).
        assert loss == pytest.approx(q_function((c - m) / s), rel=5e-3)

    def test_elastic_below_step(self):
        kwargs = dict(capacity=100.0, mean=97.0, std=3.0)
        step = gaussian_utility_loss(StepUtility(), **kwargs)
        linear = gaussian_utility_loss(LinearUtility(), **kwargs)
        concave = gaussian_utility_loss(ConcaveUtility(4.0), **kwargs)
        assert concave < linear < step

    def test_deterministic_degenerate_cases(self):
        assert gaussian_utility_loss(
            LinearUtility(), capacity=10.0, mean=8.0, std=0.0
        ) == 0.0
        loss = gaussian_utility_loss(
            LinearUtility(), capacity=10.0, mean=20.0, std=0.0
        )
        assert loss == pytest.approx(0.5)

    def test_matches_meter_monte_carlo(self, rng):
        """Quadrature vs direct sampling of the same Gaussian."""
        c, m, s = 100.0, 96.0, 4.0
        utility = ConcaveUtility(4.0)
        theory = gaussian_utility_loss(utility, capacity=c, mean=m, std=s)
        samples = rng.normal(m, s, size=400000)
        over = samples[samples > c]
        mc = float(np.sum(utility.loss(c / over))) / samples.size
        assert theory == pytest.approx(mc, rel=0.05)

    def test_validation(self):
        with pytest.raises(ParameterError):
            gaussian_utility_loss(StepUtility(), capacity=0.0, mean=1.0, std=1.0)


class TestEngineIntegration:
    def test_step_meter_tracks_link_overflow(self, paper_source):
        """On a live engine trajectory, the step-utility loss must equal
        the link's exact overload-time fraction."""
        from repro.core.controllers import CertaintyEquivalentController
        from repro.core.estimators import MemorylessEstimator
        from repro.simulation.fast import FastEngine, as_vector_model

        meter = UtilityMeter(50.0, StepUtility())
        engine = FastEngine(
            model=as_vector_model(paper_source),
            controller=CertaintyEquivalentController(50.0, 5e-2),
            estimator=MemorylessEstimator(),
            capacity=50.0,
            holding_time=100.0,
            dt=0.1,
            rng=np.random.default_rng(0),
            observers=[meter],
        )
        engine.run_until(500.0)
        assert meter.mean_utility_loss == pytest.approx(
            engine.link.overflow_fraction, rel=1e-9
        )
