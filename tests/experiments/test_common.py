"""Tests for experiment infrastructure (Quality, ExperimentResult, report)."""

import json

import pytest

from repro.errors import ParameterError
from repro.experiments.common import ExperimentResult, Quality
from repro.experiments.report import format_table, format_value, render


class TestQuality:
    def test_pick(self):
        assert Quality("smoke").pick(1, 2, 3) == 1
        assert Quality("standard").pick(1, 2, 3) == 2
        assert Quality("full").pick(1, 2, 3) == 3

    def test_rejects_unknown(self):
        with pytest.raises(ParameterError):
            Quality("ludicrous")


def sample_result() -> ExperimentResult:
    return ExperimentResult(
        experiment_id="demo",
        title="A demo",
        columns=["x", "p"],
        rows=[{"x": 1, "p": 0.5, "extra": "hidden"}, {"x": 2, "p": 1.3e-7}],
        params={"seed": 0},
    )


class TestExperimentResult:
    def test_column_extraction(self):
        result = sample_result()
        assert result.column("x") == [1, 2]
        assert result.column("missing") == [None, None]

    def test_json_roundtrip(self):
        result = sample_result()
        data = json.loads(result.to_json())
        assert data["experiment_id"] == "demo"
        assert data["rows"][0]["x"] == 1

    def test_save(self, tmp_path):
        path = sample_result().save(tmp_path)
        assert path.name == "demo.json"
        assert json.loads(path.read_text())["title"] == "A demo"


class TestReport:
    def test_format_value_styles(self):
        assert format_value(None) == "-"
        assert format_value(True) == "True"
        assert format_value(3) == "3"
        assert format_value(0.0) == "0"
        assert format_value(0.1234567) == "0.1235"
        assert format_value(1.3e-7) == "1.300e-07"
        assert format_value(float("inf")) == "inf"
        assert format_value("txt") == "txt"

    def test_table_contains_all_rows(self):
        table = format_table(sample_result())
        lines = table.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        assert "x" in lines[0] and "p" in lines[0]
        assert "1.300e-07" in table

    def test_render_has_title_and_params(self):
        text = render(sample_result())
        assert "demo: A demo" in text
        assert "seed=0" in text
