"""Smoke-level runs of every experiment: schema and basic shape checks.

These run each experiment at ``quality="smoke"`` (seconds each) and assert
the row schema plus the weakest form of the paper's qualitative claim that
survives smoke statistics.  The full shape checks live in
``tests/integration/test_paper_claims.py``.
"""

import pytest

from repro.experiments import run_experiment

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def results():
    cache = {}

    def get(experiment_id: str):
        if experiment_id not in cache:
            cache[experiment_id] = run_experiment(experiment_id, quality="smoke")
        return cache[experiment_id]

    return get


class TestSchemas:
    @pytest.mark.parametrize(
        "experiment_id",
        [
            "prop33",
            "eqn21",
            "fig5",
            "fig6",
            "fig7",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "util40",
            "hetero",
            "baselines",
            "poisson",
            "aggregate",
            "buffer",
            "utility",
        ],
    )
    def test_columns_present_in_rows(self, results, experiment_id):
        result = results(experiment_id)
        assert result.rows, f"{experiment_id} produced no rows"
        for column in result.columns:
            assert any(
                column in row for row in result.rows
            ), f"{experiment_id}: column {column} missing from all rows"
        assert result.params.get("quality") in ("smoke", None)


class TestSmokeShapes:
    def test_prop33_ce_misses_target(self, results):
        for row in results("prop33").rows:
            assert row["p_f_ce_sim"] > row["p_q"]

    def test_eqn21_peak_positive(self, results):
        curve = [row["p_f_sim"] for row in results("eqn21").rows]
        assert max(curve) > 0.0
        assert curve[0] == 0.0

    def test_fig5_memory_monotone_theory(self, results):
        theory = [row["p_f_theory38"] for row in results("fig5").rows]
        assert theory == sorted(theory, reverse=True)

    def test_fig6_pce_rises_with_memory(self, results):
        rows = results("fig6").rows
        assert rows[0]["alpha_ce"] > rows[-1]["alpha_ce"]

    def test_fig9_memory_helps_at_short_tc(self, results):
        rows = results("fig9").rows
        by_key = {(r["T_m_over_Th_tilde"], r["T_c"]): r["p_f_theory37"] for r in rows}
        ratios = sorted({k[0] for k in by_key})
        t_cs = sorted({k[1] for k in by_key})
        assert by_key[(ratios[-1], t_cs[0])] < by_key[(ratios[0], t_cs[0])]

    def test_fig12_no_worse_than_fig11(self, results):
        p11 = results("fig11").rows[0]["p_f_sim"]
        p12 = results("fig12").rows[0]["p_f_sim"]
        assert p12 <= p11 * 1.5

    def test_hetero_bias_positive(self, results):
        for row in results("hetero").rows:
            assert row["bias_var"] > 0.0
            assert row["mixture_std"] > row["within_std"]

    def test_baselines_contains_all_schemes(self, results):
        schemes = {row["scheme"] for row in results("baselines").rows}
        assert {
            "perfect",
            "ce-memoryless",
            "ce-memory",
            "adjusted",
            "measured-sum",
            "prior-smoothed",
            "peak-rate",
        } <= schemes

    def test_util40_conservatism_costs_bandwidth(self, results):
        rows = results("util40").rows
        for row in rows:
            assert row["delta_util_eqn40"] < 0.0  # adjusted loses utilization

    def test_poisson_blocking_monotone(self, results):
        import math

        rows = [
            r for r in results("poisson").rows if math.isfinite(r["load_factor"])
        ]
        blocking = [r["blocking_probability"] for r in rows]
        assert blocking == sorted(blocking)

    def test_aggregate_rows_paired(self, results):
        for row in results("aggregate").rows:
            assert 0.0 <= row["p_f_aggregate"] <= 1.0
            assert 0.0 <= row["p_f_per_flow"] <= 1.0

    def test_buffer_monotone(self, results):
        rows = sorted(results("buffer").rows, key=lambda r: r["buffer_size"])
        losses = [r["loss_fraction"] for r in rows]
        assert losses == sorted(losses, reverse=True)

    def test_utility_step_equals_overflow(self, results):
        for row in results("utility").rows:
            assert row["loss_step"] == row["overflow_time_fraction"]
            assert row["loss_concave"] <= row["loss_linear"] + 1e-12
