"""Tests for the experiment registry."""

import pytest

from repro.errors import ParameterError
from repro.experiments import EXPERIMENTS, list_experiments, run_experiment


EXPECTED_IDS = {
    "prop33",
    "eqn21",
    "fig5",
    "fig6",
    "fig7",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "util40",
    "hetero",
    "baselines",
    "poisson",
    "aggregate",
    "buffer",
    "utility",
}


class TestRegistry:
    def test_every_design_doc_experiment_registered(self):
        assert set(EXPERIMENTS) == EXPECTED_IDS

    def test_listing_sorted(self):
        assert list_experiments() == sorted(EXPECTED_IDS)

    def test_unknown_id_raises(self):
        with pytest.raises(ParameterError):
            run_experiment("fig99")

    def test_run_dispatches(self):
        result = run_experiment("fig6", quality="smoke")
        assert result.experiment_id == "fig6"
        assert result.rows
