"""Tests for the sweep helpers shared by the figure experiments."""

import math

import pytest

from repro.experiments.sweeps import (
    scaled_holding,
    simulate_rcbr_point,
    simulate_source_point,
)
from repro.traffic.rcbr import paper_rcbr_source

pytestmark = pytest.mark.slow


class TestScaledHolding:
    def test_definition(self):
        assert scaled_holding(1000.0, 100.0) == pytest.approx(100.0)


class TestRcbrPoint:
    def test_basic_run(self):
        result = simulate_rcbr_point(
            n=50.0,
            holding_time=200.0,
            correlation_time=1.0,
            memory=10.0,
            p_ce=1e-2,
            max_time=2000.0,
            seed=1,
        )
        assert result.simulated_time > 0.0
        assert 0.0 <= result.overflow_probability <= 1.0

    def test_dt_clamped_for_tiny_memory(self):
        """A very small T_m must not blow up the step count: the default dt
        is clamped at T_c/40."""
        result = simulate_rcbr_point(
            n=30.0,
            holding_time=100.0,
            correlation_time=1.0,
            memory=1e-4,
            p_ce=5e-2,
            max_time=500.0,
            seed=1,
        )
        assert result.simulated_time > 0.0

    def test_alpha_and_p_paths_agree(self):
        from repro.core.gaussian import q_inverse

        common = dict(
            n=50.0,
            holding_time=200.0,
            correlation_time=1.0,
            memory=10.0,
            max_time=1000.0,
            seed=2,
        )
        a = simulate_rcbr_point(p_ce=1e-2, **common)
        b = simulate_rcbr_point(alpha_ce=q_inverse(1e-2), p_q=1e-2, **common)
        assert a.overflow_probability == pytest.approx(
            b.overflow_probability, rel=1e-9
        )


class TestSourcePoint:
    def test_capacity_scales_with_source_mean(self):
        source = paper_rcbr_source(mean=2.0, cv=0.3)
        result = simulate_source_point(
            source=source,
            n=30.0,
            holding_time=100.0,
            memory=5.0,
            p_ce=5e-2,
            max_time=500.0,
            seed=3,
        )
        # n is in units of the source mean: ~30 flows, not ~15.
        assert result.mean_flows == pytest.approx(30.0, rel=0.2)
