"""Cross-validation of the two simulation engines.

The event-driven engine is the exact reference; the vectorized engine
discretizes time.  On identical configurations their *statistics* (not
trajectories -- randomness is consumed differently) must agree within
sampling error.
"""

import numpy as np
import pytest

from repro.simulation.runner import SimulationConfig, simulate
from repro.traffic.rcbr import paper_rcbr_source

pytestmark = pytest.mark.slow


def run(engine: str, seed: int, **overrides):
    defaults = dict(
        source=paper_rcbr_source(),
        capacity=50.0,
        holding_time=200.0,
        p_ce=2e-2,
        memory=0.0,
        engine=engine,
        max_time=4000.0,
        sample_period=10.0,
        warmup=100.0,
        seed=seed,
    )
    defaults.update(overrides)
    return simulate(SimulationConfig(**defaults))


@pytest.fixture(scope="module")
def paired_runs():
    """Three independent replicates per engine, memoryless config."""
    fast = [run("fast", seed=i) for i in range(3)]
    event = [run("event", seed=100 + i) for i in range(3)]
    return fast, event


class TestMemorylessAgreement:
    def test_overflow_fraction(self, paired_runs):
        fast, event = paired_runs
        f = np.mean([r.time_fraction for r in fast])
        e = np.mean([r.time_fraction for r in event])
        assert f == pytest.approx(e, rel=0.5, abs=5e-3)

    def test_utilization(self, paired_runs):
        fast, event = paired_runs
        f = np.mean([r.mean_utilization for r in fast])
        e = np.mean([r.mean_utilization for r in event])
        assert f == pytest.approx(e, abs=0.02)

    def test_mean_flows(self, paired_runs):
        fast, event = paired_runs
        f = np.mean([r.mean_flows for r in fast])
        e = np.mean([r.mean_flows for r in event])
        assert f == pytest.approx(e, rel=0.05)


class TestMemoryAgreement:
    def test_with_exponential_memory(self):
        fast = run("fast", seed=7, memory=20.0, max_time=3000.0)
        event = run("event", seed=8, memory=20.0, max_time=3000.0)
        assert fast.mean_utilization == pytest.approx(
            event.mean_utilization, abs=0.03
        )
        assert fast.mean_flows == pytest.approx(event.mean_flows, rel=0.07)

    def test_finer_step_converges_to_event_engine(self):
        """Halving the fast engine's dt must move its overflow fraction
        toward the reference, or at least not away by more than noise."""
        event = run("event", seed=21, max_time=3000.0)
        coarse = run("fast", seed=22, dt=0.5, max_time=3000.0)
        fine = run("fast", seed=23, dt=0.05, max_time=3000.0)
        gap_coarse = abs(coarse.time_fraction - event.time_fraction)
        gap_fine = abs(fine.time_fraction - event.time_fraction)
        assert gap_fine <= gap_coarse + 0.01
