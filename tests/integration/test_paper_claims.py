"""End-to-end checks of the paper's headline claims (Section 5.1 summary).

Each test simulates the full MBAC pipeline and asserts one bullet of the
paper's "Summary of Results".  Parameters are scaled down so each test runs
in seconds while keeping the claimed effect well above sampling noise.
"""

import math

import pytest

from repro.simulation.impulsive import steady_state_overflow_mc
from repro.simulation.rng import make_rng
from repro.simulation.runner import SimulationConfig, simulate
from repro.theory.impulsive import ce_overflow_probability
from repro.theory.inversion import adjusted_ce_alpha
from repro.traffic.marginals import TruncatedGaussianMarginal
from repro.traffic.rcbr import paper_rcbr_source

pytestmark = pytest.mark.slow

P_Q = 1e-2  # scaled-up target so smoke-sized runs resolve it


def simulate_rcbr(memory, *, alpha_ce=None, p_ce=None, seed=0, n=100.0,
                  holding_time=1000.0, correlation_time=1.0, max_time=2e4):
    source = paper_rcbr_source(correlation_time=correlation_time)
    return simulate(
        SimulationConfig(
            source=source,
            capacity=n * source.mean,
            holding_time=holding_time,
            p_ce=p_ce,
            alpha_ce=alpha_ce,
            memory=memory,
            engine="fast",
            p_q=P_Q,
            max_time=max_time,
            seed=seed,
        )
    )


class TestClaim1CertaintyEquivalenceFails:
    """'Memoryless certainty-equivalent admission control can have very
    poor performance ... missed by several orders of magnitude.'"""

    def test_continuous_load_memoryless_misses_badly(self):
        result = simulate_rcbr(memory=0.0, p_ce=P_Q)
        assert result.overflow_probability > 5.0 * P_Q

    def test_size_independence_of_impulsive_degradation(self, rng):
        """The sqrt(2) law does not improve with n (Prop 3.3)."""
        marginal = TruncatedGaussianMarginal.from_cv(1.0, 0.3)
        limit = float(ce_overflow_probability(P_Q))
        for n in [100, 1600]:
            result = steady_state_overflow_mc(
                n=n, marginal=marginal, p_q=P_Q, n_reps=20000, rng=rng
            )
            assert result.probability == pytest.approx(limit, rel=0.3)
            assert result.probability > 3.0 * P_Q


class TestClaim2MemoryRestoresQoS:
    """'Increasing the amount of memory in the estimator reduces the
    overflow probability' -- and the T_m ~ T_h_tilde rule is robust."""

    def test_memory_ladder(self):
        t_h_tilde = 100.0
        ladder = [
            simulate_rcbr(memory=m, p_ce=P_Q, seed=3).overflow_probability
            for m in [0.0, 0.1 * t_h_tilde, t_h_tilde]
        ]
        assert ladder[2] < ladder[0] / 4.0
        assert ladder[1] < ladder[0]

    def test_paper_rule_meets_order_of_target(self):
        result = simulate_rcbr(memory=100.0, p_ce=P_Q, seed=5)
        # Masking-regime prediction: (snr*alpha_q + 1) * p_q ~ 1.7 * p_q.
        assert result.overflow_probability <= 4.0 * P_Q


class TestClaim3AdjustedTargetIsRobust:
    """Figs 6-7: inverting the theory for p_ce achieves p_f <~ p_q."""

    @pytest.mark.parametrize("memory", [10.0, 100.0])
    def test_adjusted_scheme(self, memory):
        alpha_ce = adjusted_ce_alpha(
            P_Q,
            memory=memory,
            correlation_time=1.0,
            holding_time_scaled=100.0,
            snr=0.3,
            formula="general",
        )
        result = simulate_rcbr(memory=memory, alpha_ce=alpha_ce, seed=11)
        assert result.overflow_probability <= 2.0 * P_Q

    def test_adjustment_costs_utilization(self):
        plain = simulate_rcbr(memory=100.0, p_ce=P_Q, seed=13)
        alpha_ce = adjusted_ce_alpha(
            P_Q,
            memory=10.0,
            correlation_time=1.0,
            holding_time_scaled=100.0,
            snr=0.3,
            formula="general",
        )
        conservative = simulate_rcbr(memory=10.0, alpha_ce=alpha_ce, seed=13)
        assert conservative.mean_utilization < plain.mean_utilization


class TestClaim4HoldingTimeMatters:
    """'The parameter T_h_tilde defines a critical time-scale ... a high
    flow arrival rate [and long holding] has a detrimental effect.'"""

    def test_longer_holding_is_worse_memoryless(self):
        quick = simulate_rcbr(
            memory=0.0, p_ce=P_Q, holding_time=100.0, seed=17, max_time=1e4
        )
        slow = simulate_rcbr(
            memory=0.0, p_ce=P_Q, holding_time=5000.0, seed=17, max_time=1e4
        )
        assert slow.overflow_probability > 2.0 * quick.overflow_probability


class TestClaim5LrdRobustness:
    """Figs 11-12: the memory rule holds even for LRD traffic."""

    def test_memoryless_vs_rule_on_lrd(self):
        from repro.traffic.lrd import starwars_like_source

        source = starwars_like_source(
            n_segments=1 << 14,
            segment_time=1.0,
            renegotiation_period=None,
            cv=0.3,
            hurst=0.85,
            rng=make_rng(99),
        )
        n = 100.0
        t_h = 1000.0
        t_h_tilde = t_h / math.sqrt(n)

        def run(memory, seed):
            return simulate(
                SimulationConfig(
                    source=source,
                    capacity=n * source.mean,
                    holding_time=t_h,
                    p_ce=P_Q,
                    memory=memory,
                    engine="fast",
                    p_q=P_Q,
                    max_time=4e4,
                    seed=seed,
                )
            )

        memoryless = run(0.0, seed=31)
        ruled = run(t_h_tilde, seed=32)
        assert memoryless.overflow_probability > 3.0 * P_Q
        assert ruled.overflow_probability <= 2.5 * P_Q
