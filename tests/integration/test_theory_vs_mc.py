"""Theory-vs-Monte-Carlo consistency across module boundaries.

These tests tie the analytic modules to fully independent stochastic
implementations: the static impulsive MC, the finite-holding renewal MC,
and the Gaussian-process boundary-crossing MC.
"""

import numpy as np
import pytest

from repro.core.gaussian import q_inverse
from repro.processes.hitting_mc import hitting_probability_mc
from repro.simulation.impulsive import (
    admitted_counts_mc,
    finite_holding_overflow_mc,
)
from repro.theory.finite_holding import overflow_probability_curve, peak_overflow
from repro.theory.impulsive import admitted_count_distribution
from repro.theory.memoryful import ContinuousLoadModel, overflow_probability
from repro.traffic.marginals import (
    LognormalMarginal,
    TruncatedGaussianMarginal,
    UniformMarginal,
)

pytestmark = pytest.mark.slow


class TestProp31UniversalityAcrossMarginals:
    """Prop 3.1/3.3 are distribution-free: the admitted-count fluctuation
    depends on the marginal only through (mu, sigma)."""

    @pytest.mark.parametrize(
        "marginal",
        [
            TruncatedGaussianMarginal.from_cv(1.0, 0.3),
            LognormalMarginal(1.0, 0.3),
            UniformMarginal(0.48, 1.52),  # mean 1, std ~0.3
        ],
        ids=["gaussian", "lognormal", "uniform"],
    )
    def test_admitted_count_gaussian_limit(self, marginal, rng):
        n = 400
        counts = admitted_counts_mc(
            n=n, marginal=marginal, p_q=1e-2, n_reps=20000, rng=rng
        )
        limit = admitted_count_distribution(n, marginal.mean, marginal.std, 1e-2)
        assert counts.mean() == pytest.approx(limit.mean, rel=0.01)
        assert counts.std(ddof=1) == pytest.approx(limit.std, rel=0.15)


class TestEqn21PeakAgainstMc:
    def test_peak_location_and_height(self, rng):
        marginal = TruncatedGaussianMarginal.from_cv(1.0, 0.3)
        n, t_h_tilde = 400, 50.0
        holding = t_h_tilde * np.sqrt(n)
        t_peak, p_peak = peak_overflow(
            p_q=2e-2,
            snr=marginal.std / marginal.mean,
            holding_time_scaled=t_h_tilde,
            correlation_time=1.0,
        )
        times = np.array([t_peak])
        mc = finite_holding_overflow_mc(
            n=n,
            marginal=marginal,
            p_q=2e-2,
            holding_time=holding,
            correlation_time=1.0,
            times=times,
            n_reps=60000,
            rng=rng,
        )
        assert mc[0] == pytest.approx(p_peak, rel=0.4)

    def test_curve_correlation(self, rng):
        """Theory and MC curves must be strongly rank-correlated."""
        marginal = TruncatedGaussianMarginal.from_cv(1.0, 0.3)
        times = np.geomspace(0.2, 200.0, 8)
        mc = finite_holding_overflow_mc(
            n=100,
            marginal=marginal,
            p_q=3e-2,
            holding_time=500.0,
            correlation_time=1.0,
            times=times,
            n_reps=30000,
            rng=rng,
        )
        theory = overflow_probability_curve(
            times,
            p_q=3e-2,
            snr=marginal.std / marginal.mean,
            holding_time_scaled=50.0,
            correlation_time=1.0,
        )
        # Compare shapes on points with meaningful mass.
        mask = theory > 1e-4
        ratio = mc[mask] / theory[mask]
        assert np.all(ratio > 0.2) and np.all(ratio < 5.0)


class TestBrakerShapeAgainstMc:
    def test_memory_sweep_shape(self):
        """Theory (37) and the GP Monte Carlo must order the memory sweep
        identically and stay within a conservative envelope."""
        alpha = 2.5
        beta = 0.2
        theory_curve, mc_curve = [], []
        for t_m in [0.0, 2.0, 10.0]:
            model = ContinuousLoadModel(
                correlation_time=1.0,
                holding_time_scaled=1.0 / (0.3 * beta),
                snr=0.3,
                memory=t_m,
            )
            theory_curve.append(overflow_probability(model, alpha=alpha))
            mc = hitting_probability_mc(
                alpha=alpha,
                beta=beta,
                correlation_time=1.0,
                memory=t_m,
                n_paths=4000,
                rng=np.random.default_rng(42),
            )
            mc_curve.append(mc.probability)
        assert theory_curve == sorted(theory_curve, reverse=True)
        assert mc_curve == sorted(mc_curve, reverse=True)
        for th, mc_p in zip(theory_curve, mc_curve):
            assert mc_p <= th * 1.2 + 0.01  # theory conservative
            assert th <= 12.0 * mc_p + 1e-4  # within an order of magnitude


class TestAdjustedAlphaAgainstGpMc:
    def test_inverted_target_meets_p_q_in_gp_world(self):
        """Invert eqn (37) for alpha_ce, then check by GP Monte Carlo that
        the hitting probability is at or below p_q."""
        from repro.theory.inversion import adjusted_ce_alpha

        p_q = 2e-2
        t_m = 5.0
        beta = 0.2
        t_h_tilde = 1.0 / (0.3 * beta)
        alpha_ce = adjusted_ce_alpha(
            p_q,
            memory=t_m,
            correlation_time=1.0,
            holding_time_scaled=t_h_tilde,
            snr=0.3,
            formula="general",
        )
        mc = hitting_probability_mc(
            alpha=alpha_ce,
            beta=beta,
            correlation_time=1.0,
            memory=t_m,
            n_paths=6000,
            rng=np.random.default_rng(17),
        )
        assert mc.probability <= p_q + 3.0 * mc.std_error

    def test_sanity_alpha_scale(self):
        assert q_inverse(2e-2) < 3.0  # the alpha scale these tests live at
