"""Tests for empirical autocorrelation and Hurst estimation."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.processes.autocorr import (
    empirical_autocorrelation,
    hurst_aggregated_variance,
    integral_time_scale,
)


class TestEmpiricalAutocorrelation:
    def test_lag_zero_is_one(self, rng):
        rho = empirical_autocorrelation(rng.standard_normal(1000), 10)
        assert rho[0] == pytest.approx(1.0)

    def test_white_noise_decorrelated(self, rng):
        rho = empirical_autocorrelation(rng.standard_normal(100000), 5)
        assert np.max(np.abs(rho[1:])) < 0.02

    def test_ar1_recovery(self, rng):
        a = 0.9
        n = 200000
        x = np.empty(n)
        x[0] = rng.standard_normal()
        noise = rng.standard_normal(n)
        for k in range(1, n):
            x[k] = a * x[k - 1] + noise[k]
        rho = empirical_autocorrelation(x, 10)
        expected = a ** np.arange(11)
        assert np.max(np.abs(rho - expected)) < 0.03

    def test_matches_direct_computation(self, rng):
        """FFT path must agree with the O(n^2) definition."""
        x = rng.standard_normal(257)
        rho = empirical_autocorrelation(x, 5)
        centered = x - x.mean()
        direct = np.array(
            [
                np.sum(centered[: x.size - k] * centered[k:]) / x.size
                for k in range(6)
            ]
        )
        direct = direct / direct[0]
        np.testing.assert_allclose(rho, direct, atol=1e-10)

    def test_validation(self, rng):
        with pytest.raises(ParameterError):
            empirical_autocorrelation(np.array([1.0]), 1)
        with pytest.raises(ParameterError):
            empirical_autocorrelation(rng.standard_normal(10), 10)
        with pytest.raises(ParameterError):
            empirical_autocorrelation(np.ones(100), 5)  # zero variance


class TestIntegralTimeScale:
    def test_exponential_gives_tc(self):
        dt, t_c = 0.01, 2.0
        lags = np.arange(5000) * dt
        rho = np.exp(-lags / t_c)
        assert integral_time_scale(rho, dt) == pytest.approx(t_c, rel=0.01)

    def test_truncates_at_first_zero(self):
        rho = np.array([1.0, 0.5, -0.2, 0.9])
        # Only lags 0 and 1 counted: dt*(1 + 0.5 - 0.5) = dt.
        assert integral_time_scale(rho, 1.0) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ParameterError):
            integral_time_scale(np.array([]), 1.0)
        with pytest.raises(ParameterError):
            integral_time_scale(np.array([1.0]), 0.0)


class TestHurstEstimator:
    def test_white_noise(self, rng):
        h = hurst_aggregated_variance(rng.standard_normal(1 << 15))
        assert h == pytest.approx(0.5, abs=0.05)

    def test_lrd_series(self, rng):
        from repro.processes.fgn import fgn

        h = hurst_aggregated_variance(fgn(1 << 15, 0.8, rng))
        assert h == pytest.approx(0.8, abs=0.08)

    def test_custom_blocks(self, rng):
        h = hurst_aggregated_variance(
            rng.standard_normal(1 << 12), block_sizes=[2, 4, 8, 16, 32]
        )
        assert 0.3 < h < 0.7

    def test_validation(self, rng):
        with pytest.raises(ParameterError):
            hurst_aggregated_variance(rng.standard_normal(10))
        with pytest.raises(ParameterError):
            hurst_aggregated_variance(
                rng.standard_normal(256), block_sizes=[1000]
            )
