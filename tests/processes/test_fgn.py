"""Tests for the exact fGn synthesis (Davies-Harte)."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.processes.fgn import fbm, fgn, fgn_autocovariance


class TestAutocovariance:
    def test_lag_zero_is_one(self):
        assert fgn_autocovariance(0, 0.8) == pytest.approx(1.0)

    def test_white_noise_case(self):
        assert fgn_autocovariance(1, 0.5) == pytest.approx(0.0, abs=1e-12)
        assert fgn_autocovariance(5, 0.5) == pytest.approx(0.0, abs=1e-12)

    def test_positive_correlations_for_high_hurst(self):
        gamma = fgn_autocovariance(np.arange(1, 20), 0.85)
        assert np.all(gamma > 0.0)

    def test_negative_correlations_for_low_hurst(self):
        assert fgn_autocovariance(1, 0.2) < 0.0

    def test_power_law_tail(self):
        """gamma(k) ~ H(2H-1) k^{2H-2} for large k."""
        h = 0.8
        k = np.array([100.0, 400.0])
        gamma = fgn_autocovariance(k, h)
        ratio = gamma[1] / gamma[0]
        assert ratio == pytest.approx(4.0 ** (2 * h - 2), rel=0.01)

    def test_validation(self):
        with pytest.raises(ParameterError):
            fgn_autocovariance(1, 0.0)
        with pytest.raises(ParameterError):
            fgn_autocovariance(1, 1.0)


class TestFgnSampling:
    def test_shape_and_moments(self, rng):
        x = fgn(1 << 14, 0.8, rng)
        assert x.shape == (1 << 14,)
        # LRD sample-mean std at n=2^14, H=0.8 is n^{H-1} ~ 0.14;
        # allow ~3.5 sigma.
        assert abs(x.mean()) < 0.5
        assert x.std() == pytest.approx(1.0, rel=0.1)

    def test_white_case_is_iid(self, rng):
        x = fgn(1 << 14, 0.5, rng)
        lag1 = np.corrcoef(x[:-1], x[1:])[0, 1]
        assert abs(lag1) < 0.03

    def test_empirical_autocovariance_matches(self, rng):
        """Average the empirical ACF over independent replicates and compare
        with the exact fGn autocovariance at small lags."""
        h, n, reps = 0.8, 4096, 20
        acfs = []
        for _ in range(reps):
            x = fgn(n, h, rng)
            x = x - x.mean()
            acf = np.correlate(x, x, "full")[n - 1 : n + 10] / n
            acfs.append(acf / acf[0])
        mean_acf = np.mean(acfs, axis=0)
        expected = fgn_autocovariance(np.arange(11), h)
        assert np.max(np.abs(mean_acf - expected)) < 0.05

    def test_variance_of_block_means_lrd(self, rng):
        """Var of m-block means must decay like m^{2H-2}, much slower than
        the 1/m of i.i.d. data -- the defining LRD property."""
        h = 0.85
        x = fgn(1 << 16, h, rng)
        m = 64
        blocks = x[: (x.size // m) * m].reshape(-1, m).mean(axis=1)
        observed = blocks.var()
        expected = float(m) ** (2 * h - 2)
        iid_prediction = 1.0 / m
        assert observed == pytest.approx(expected, rel=0.3)
        assert observed > 5.0 * iid_prediction

    def test_reproducible(self):
        a = fgn(512, 0.7, np.random.default_rng(9))
        b = fgn(512, 0.7, np.random.default_rng(9))
        np.testing.assert_array_equal(a, b)

    def test_validation(self, rng):
        with pytest.raises(ParameterError):
            fgn(1, 0.8, rng)


class TestFbm:
    def test_starts_at_zero(self, rng):
        path = fbm(100, 0.7, rng)
        assert path[0] == 0.0
        assert path.shape == (101,)

    def test_increments_are_fgn(self, rng):
        path = fbm(100, 0.7, np.random.default_rng(4))
        x = fgn(100, 0.7, np.random.default_rng(4))
        np.testing.assert_allclose(np.diff(path), x, rtol=1e-12)

    def test_self_similar_variance_growth(self, rng):
        """Var[B_t] ~ t^{2H}: check the end-point variance across paths."""
        h, n, reps = 0.75, 256, 400
        finals = np.array([fbm(n, h, rng)[-1] for _ in range(reps)])
        assert finals.var() == pytest.approx(float(n) ** (2 * h), rel=0.25)
