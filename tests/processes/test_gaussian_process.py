"""Tests for generic stationary Gaussian sampling (circulant embedding)."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.processes.gaussian_process import sample_stationary_gaussian


def exponential_cov(t_c: float, variance: float = 1.0):
    def cov(lags):
        return variance * np.exp(-np.asarray(lags) / t_c)

    return cov


class TestSampling:
    def test_shape(self, rng):
        out = sample_stationary_gaussian(
            autocovariance=exponential_cov(1.0), n=64, dt=0.1, n_paths=5, rng=rng
        )
        assert out.shape == (5, 64)

    def test_marginal_variance(self, rng):
        out = sample_stationary_gaussian(
            autocovariance=exponential_cov(1.0, variance=2.5),
            n=32,
            dt=0.25,
            n_paths=4000,
            rng=rng,
        )
        assert out[:, 10].var() == pytest.approx(2.5, rel=0.1)

    def test_pairwise_covariance(self, rng):
        t_c, dt = 2.0, 0.5
        out = sample_stationary_gaussian(
            autocovariance=exponential_cov(t_c), n=16, dt=dt, n_paths=30000, rng=rng
        )
        for lag in [1, 3]:
            cov = np.mean(out[:, 0] * out[:, lag])
            assert cov == pytest.approx(np.exp(-lag * dt / t_c), abs=0.02)

    def test_two_scale_mixture(self, rng):
        def cov(lags):
            lags = np.asarray(lags)
            return 0.6 * np.exp(-lags / 0.5) + 0.4 * np.exp(-lags / 10.0)

        out = sample_stationary_gaussian(
            autocovariance=cov, n=64, dt=0.5, n_paths=20000, rng=rng
        )
        assert np.mean(out[:, 0] * out[:, 4]) == pytest.approx(cov(2.0), abs=0.02)

    def test_reproducible(self):
        kwargs = dict(autocovariance=exponential_cov(1.0), n=32, dt=0.1, n_paths=2)
        a = sample_stationary_gaussian(rng=np.random.default_rng(1), **kwargs)
        b = sample_stationary_gaussian(rng=np.random.default_rng(1), **kwargs)
        np.testing.assert_array_equal(a, b)


class TestValidation:
    def test_rejects_tiny_n(self, rng):
        with pytest.raises(ParameterError):
            sample_stationary_gaussian(
                autocovariance=exponential_cov(1.0), n=1, dt=0.1, n_paths=1, rng=rng
            )

    def test_rejects_bad_dt(self, rng):
        with pytest.raises(ParameterError):
            sample_stationary_gaussian(
                autocovariance=exponential_cov(1.0), n=8, dt=0.0, n_paths=1, rng=rng
            )

    def test_rejects_zero_variance(self, rng):
        with pytest.raises(ParameterError):
            sample_stationary_gaussian(
                autocovariance=lambda lags: np.zeros(len(np.atleast_1d(lags))),
                n=8,
                dt=0.1,
                n_paths=1,
                rng=rng,
            )

    def test_rejects_strongly_indefinite(self, rng):
        """An oscillating 'covariance' that is far from PSD must raise."""

        def bad(lags):
            lags = np.asarray(lags, dtype=float)
            return np.where(lags == 0.0, 1.0, -0.9)

        with pytest.raises(ParameterError):
            sample_stationary_gaussian(
                autocovariance=bad, n=32, dt=1.0, n_paths=1, rng=rng
            )
