"""Tests for the Monte-Carlo boundary-crossing estimator.

These also serve as an independent validation of the Braker approximation
used by the theory modules (the paper's eqns (30)/(32)/(37)).
"""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.processes.hitting_mc import HittingEstimate, hitting_probability_mc


class TestEstimateContainer:
    def test_within_absolute(self):
        est = HittingEstimate(probability=0.10, std_error=0.01, n_paths=900)
        assert est.within(0.11)
        assert not est.within(0.50, n_sigmas=1.0, rel=0.1)

    def test_within_relative(self):
        est = HittingEstimate(probability=0.10, std_error=1e-6, n_paths=10**8)
        assert est.within(0.13, n_sigmas=1.0, rel=0.5)


class TestMonteCarloHitting:
    def test_decreasing_in_alpha(self, rng):
        kwargs = dict(beta=0.2, correlation_time=1.0, n_paths=1500)
        p1 = hitting_probability_mc(alpha=1.0, rng=rng, **kwargs).probability
        p2 = hitting_probability_mc(alpha=2.5, rng=rng, **kwargs).probability
        assert p2 < p1

    def test_memory_reduces_hitting(self, rng):
        kwargs = dict(alpha=1.5, beta=0.05, correlation_time=1.0, n_paths=1200)
        memoryless = hitting_probability_mc(memory=0.0, rng=rng, **kwargs)
        filtered = hitting_probability_mc(memory=10.0, rng=rng, **kwargs)
        assert filtered.probability < memoryless.probability

    def test_braker_tracks_mc_memoryless(self, rng):
        """MC vs eqn (32): at alpha=3 the Braker value sits within a factor
        ~2 above the exact (MC) probability -- the conservatism the paper
        itself reports in Fig 5."""
        from repro.theory.memoryful import ContinuousLoadModel, overflow_probability

        alpha = 3.0
        model = ContinuousLoadModel(
            correlation_time=1.0, holding_time_scaled=1.0 / (0.3 * 0.3), snr=0.3
        )  # beta = 0.3
        theory = overflow_probability(model, alpha=alpha)
        mc = hitting_probability_mc(
            alpha=alpha,
            beta=model.beta,
            correlation_time=1.0,
            n_paths=6000,
            rng=rng,
        )
        assert mc.probability <= theory + 3.0 * mc.std_error  # conservative
        assert theory <= 2.5 * mc.probability  # but not wildly so

    def test_braker_conservative_with_memory(self, rng):
        """MC vs eqn (37): with estimator memory the approximation stays a
        conservative upper bound, within one order of magnitude."""
        from repro.theory.memoryful import ContinuousLoadModel, overflow_probability

        alpha = 2.5
        t_m = 5.0
        model = ContinuousLoadModel(
            correlation_time=1.0, holding_time_scaled=1.0 / (0.3 * 0.2),
            snr=0.3, memory=t_m,
        )  # beta = 0.2
        theory = overflow_probability(model, alpha=alpha)
        mc = hitting_probability_mc(
            alpha=alpha,
            beta=model.beta,
            correlation_time=1.0,
            memory=t_m,
            n_paths=6000,
            rng=rng,
        )
        assert mc.probability <= theory + 3.0 * mc.std_error
        assert theory <= 10.0 * mc.probability

    def test_stderr_scaling(self, rng):
        small = hitting_probability_mc(
            alpha=1.0, beta=0.2, correlation_time=1.0, n_paths=500, rng=rng
        )
        large = hitting_probability_mc(
            alpha=1.0, beta=0.2, correlation_time=1.0, n_paths=8000, rng=rng
        )
        assert large.std_error < small.std_error

    def test_validation(self, rng):
        with pytest.raises(ParameterError):
            hitting_probability_mc(
                alpha=0.0, beta=0.1, correlation_time=1.0, rng=rng
            )
        with pytest.raises(ParameterError):
            hitting_probability_mc(
                alpha=1.0, beta=0.1, correlation_time=1.0, memory=-1.0, rng=rng
            )

    def test_reproducible(self):
        kwargs = dict(alpha=1.5, beta=0.2, correlation_time=1.0, n_paths=400)
        a = hitting_probability_mc(rng=np.random.default_rng(3), **kwargs)
        b = hitting_probability_mc(rng=np.random.default_rng(3), **kwargs)
        assert a.probability == b.probability
