"""Tests for the OU process simulation."""

import math

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.processes.autocorr import empirical_autocorrelation
from repro.processes.ou import filtered_ou_paths, ou_autocorrelation, ou_paths


class TestOuAutocorrelation:
    def test_values(self):
        assert ou_autocorrelation(0.0, 2.0) == 1.0
        assert ou_autocorrelation(2.0, 2.0) == pytest.approx(math.exp(-1.0))
        assert ou_autocorrelation(-2.0, 2.0) == ou_autocorrelation(2.0, 2.0)

    def test_validation(self):
        with pytest.raises(ParameterError):
            ou_autocorrelation(1.0, 0.0)


class TestOuPaths:
    def test_shapes(self, rng):
        times, paths = ou_paths(
            correlation_time=1.0, n_paths=7, n_steps=50, dt=0.1, rng=rng
        )
        assert times.shape == (51,)
        assert paths.shape == (7, 51)
        assert times[-1] == pytest.approx(5.0)

    def test_stationary_variance(self, rng):
        _, paths = ou_paths(
            correlation_time=1.0, n_paths=4000, n_steps=20, dt=0.5, rng=rng
        )
        # Every time slice must be ~N(0,1).
        assert paths[:, 0].std() == pytest.approx(1.0, rel=0.05)
        assert paths[:, -1].std() == pytest.approx(1.0, rel=0.05)
        assert abs(paths[:, -1].mean()) < 0.06

    def test_exact_one_step_correlation(self, rng):
        dt, t_c = 0.3, 1.5
        _, paths = ou_paths(
            correlation_time=t_c, n_paths=60000, n_steps=1, dt=dt, rng=rng
        )
        corr = np.corrcoef(paths[:, 0], paths[:, 1])[0, 1]
        assert corr == pytest.approx(math.exp(-dt / t_c), abs=0.01)

    def test_path_autocorrelation(self, rng):
        t_c, dt = 1.0, 0.05
        _, paths = ou_paths(
            correlation_time=t_c, n_paths=1, n_steps=200000, dt=dt, rng=rng
        )
        rho = empirical_autocorrelation(paths[0], max_lag=int(2 / dt))
        lags = np.arange(rho.size) * dt
        assert np.max(np.abs(rho - np.exp(-lags / t_c))) < 0.06

    def test_zero_start_option(self, rng):
        _, paths = ou_paths(
            correlation_time=1.0,
            n_paths=5,
            n_steps=3,
            dt=0.1,
            rng=rng,
            stationary_start=False,
        )
        assert np.all(paths[:, 0] == 0.0)

    def test_validation(self, rng):
        with pytest.raises(ParameterError):
            ou_paths(correlation_time=0.0, n_paths=1, n_steps=1, dt=0.1, rng=rng)
        with pytest.raises(ParameterError):
            ou_paths(correlation_time=1.0, n_paths=0, n_steps=1, dt=0.1, rng=rng)


class TestFilteredOuPaths:
    def test_memoryless_passthrough(self, rng):
        times, z = filtered_ou_paths(
            correlation_time=1.0, memory=0.0, n_paths=3, n_steps=10, dt=0.1, rng=rng
        )
        assert z.shape == (3, 11)
        assert z[:, 0].std() > 0.0  # stationary start, not zeros

    def test_stationary_filtered_variance(self, rng):
        """Var[Z] = T_c/(T_c + T_m) (the paper's estimator-variance law)."""
        t_c, t_m = 1.0, 4.0
        _, z = filtered_ou_paths(
            correlation_time=t_c,
            memory=t_m,
            n_paths=3000,
            n_steps=40,
            dt=0.05,
            rng=rng,
        )
        target = t_c / (t_c + t_m)
        assert z[:, -1].var() == pytest.approx(target, rel=0.1)

    def test_memory_smooths(self, rng):
        """Filtered paths must fluctuate less step-to-step than raw ones."""
        _, y = ou_paths(correlation_time=1.0, n_paths=1, n_steps=5000, dt=0.05, rng=rng)
        _, z = filtered_ou_paths(
            correlation_time=1.0, memory=5.0, n_paths=1, n_steps=5000, dt=0.05,
            rng=np.random.default_rng(12345),
        )
        assert np.abs(np.diff(z[0])).mean() < 0.2 * np.abs(np.diff(y[0])).mean()

    def test_validation(self, rng):
        with pytest.raises(ParameterError):
            filtered_ou_paths(
                correlation_time=1.0, memory=-1.0, n_paths=1, n_steps=1, dt=0.1,
                rng=rng,
            )
