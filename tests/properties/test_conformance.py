"""Statistical conformance: the paper's headline laws as executable tests.

Turns the EXPERIMENTS.md tables into regressions against two closed-form
predictions of the impulsive-load model:

* **Prop 3.3 (the sqrt(2) law)**: under certainty equivalence the
  steady-state overflow probability converges to ``Q(alpha_q / sqrt(2))``
  -- far above the target ``p_q`` and independent of system size ``n``.
  Finite-``n`` systems converge *from below* with a relative bias that
  empirically scales like ``~2.4/sqrt(n)`` (n=100: ~-22%, n=400: ~-13%,
  n=1600: ~-7%); the assertions allow ``3.2/sqrt(n)`` plus a 4-sigma
  Monte-Carlo band around the limit.
* **Eqn (15) (the adjusted target)**: re-running the same MBAC with
  ``p_ce = Q(sqrt(2) alpha_q)`` restores ``p_f <= p_q``.

All runs are seeded, so the assertions are deterministic -- the
tolerances were calibrated against the actual seeded values, not tuned
until green.  A cheap smoke subset runs in tier-1; the ``slow``-marked
grid sweeps (n, p_q) like the ``prop33`` experiment does.
"""

import math

import numpy as np
import pytest

from repro.simulation.impulsive import steady_state_overflow_mc
from repro.theory.impulsive import (
    adjusted_target_impulsive,
    ce_overflow_probability,
)
from repro.traffic.marginals import TruncatedGaussianMarginal

SNR = 0.3


def marginal() -> TruncatedGaussianMarginal:
    return TruncatedGaussianMarginal.from_cv(1.0, SNR)


def finite_n_bias_allowance(n: int) -> float:
    """Relative undershoot allowed below the n->infinity limit."""
    return 3.2 / math.sqrt(n)


def assert_within_prop33_band(result, limit: float, n: int) -> None:
    """``p_sim`` must land in ``[limit*(1 - bias(n)) - 4se, limit + 4se]``.

    The lower edge combines the finite-``n`` convergence-from-below bias
    with the binomial/Monte-Carlo confidence band; the upper edge is pure
    sampling error (the limit is an upper bound as n grows).
    """
    slack = 4.0 * result.std_error
    lower = limit * (1.0 - finite_n_bias_allowance(n)) - slack
    upper = limit + slack
    assert lower <= result.probability <= upper, (
        f"Prop 3.3 violated at n={n}: simulated p_f={result.probability:.4e} "
        f"outside [{lower:.4e}, {upper:.4e}] around the sqrt(2)-law limit "
        f"{limit:.4e}"
    )


def assert_adjusted_restores_target(result, p_q: float) -> None:
    """Eqn (15): the adjusted scheme must satisfy ``p_f <= p_q`` (with a
    4-sigma band) while still admitting a non-trivial load."""
    assert result.probability <= p_q + 4.0 * result.std_error, (
        f"eqn (15) adjusted target failed to restore p_f <= p_q: "
        f"{result.probability:.4e} > {p_q:.4e}"
    )
    assert result.probability >= p_q / 50.0, (
        "adjusted scheme is vacuously safe (overflow ~ 0); the target "
        "inversion should sit just below p_q, not reject everything"
    )


class TestConformanceSmoke:
    """Tier-1 subset: one (n, p_q) point, low replication, sub-second."""

    N = 400
    P_Q = 1e-2
    N_REPS = 4000

    def test_prop33_ce_overflow_within_ci(self):
        result = steady_state_overflow_mc(
            n=self.N, marginal=marginal(), p_q=self.P_Q,
            n_reps=self.N_REPS, rng=np.random.default_rng(3),
        )
        assert_within_prop33_band(
            result, float(ce_overflow_probability(self.P_Q)), self.N
        )

    def test_ce_overflow_far_exceeds_target(self):
        # The law's punchline: certainty equivalence misses p_q by a large
        # size-independent factor (x5 at p_q=1e-2), not by a little.
        result = steady_state_overflow_mc(
            n=self.N, marginal=marginal(), p_q=self.P_Q,
            n_reps=self.N_REPS, rng=np.random.default_rng(3),
        )
        assert result.probability > 3.0 * self.P_Q

    def test_adjusted_target_restores_p_q(self):
        p_adj = float(adjusted_target_impulsive(self.P_Q))
        result = steady_state_overflow_mc(
            n=self.N, marginal=marginal(), p_q=p_adj,
            n_reps=self.N_REPS, rng=np.random.default_rng(4),
        )
        assert_adjusted_restores_target(result, self.P_Q)


@pytest.mark.slow
class TestProp33Grid:
    """The sqrt(2) law across the EXPERIMENTS.md (n, p_q) grid."""

    N_REPS = 20000

    @pytest.mark.parametrize("p_q", [1e-2, 1e-3])
    @pytest.mark.parametrize("n", [100, 400, 1600])
    def test_ce_overflow_within_ci(self, n, p_q):
        result = steady_state_overflow_mc(
            n=n, marginal=marginal(), p_q=p_q,
            n_reps=self.N_REPS, rng=np.random.default_rng(0),
        )
        assert_within_prop33_band(
            result, float(ce_overflow_probability(p_q)), n
        )

    @pytest.mark.parametrize("p_q", [1e-2, 1e-3])
    def test_bias_shrinks_with_system_size(self, p_q):
        """Convergence from below: the relative undershoot of the limit
        must decrease monotonically along n = 100 -> 400 -> 1600."""
        limit = float(ce_overflow_probability(p_q))
        biases = []
        for n in (100, 400, 1600):
            result = steady_state_overflow_mc(
                n=n, marginal=marginal(), p_q=p_q,
                n_reps=self.N_REPS, rng=np.random.default_rng(0),
            )
            biases.append((limit - result.probability) / limit)
        assert all(b > 0.0 for b in biases)  # always from below
        assert biases[0] > biases[1] > biases[2]

    def test_limit_is_size_independent(self):
        """The overflow probability approaches the same limit at n=400
        and n=1600: their gap is small vs their common distance to p_q."""
        p_q = 1e-2
        values = [
            steady_state_overflow_mc(
                n=n, marginal=marginal(), p_q=p_q,
                n_reps=self.N_REPS, rng=np.random.default_rng(0),
            ).probability
            for n in (400, 1600)
        ]
        assert abs(values[1] - values[0]) < 0.15 * values[0]
        assert min(values) > 3.0 * p_q


@pytest.mark.slow
class TestAdjustedTargetGrid:
    """Eqn (15) restores p_f <= p_q across the grid."""

    N_REPS = 20000

    @pytest.mark.parametrize("p_q", [1e-2, 1e-3])
    @pytest.mark.parametrize("n", [100, 400, 1600])
    def test_adjusted_restores_target(self, n, p_q):
        p_adj = float(adjusted_target_impulsive(p_q))
        assert p_adj < p_q  # the inversion is strictly conservative
        result = steady_state_overflow_mc(
            n=n, marginal=marginal(), p_q=p_adj,
            n_reps=self.N_REPS, rng=np.random.default_rng(1),
        )
        assert_adjusted_restores_target(result, p_q)


@pytest.mark.slow
class TestEstimatorAgreement:
    """The variance-reduced (conditional) estimator the conformance tests
    lean on must agree with raw binomial indicator Monte Carlo."""

    def test_conditional_matches_raw_binomial(self):
        kw = dict(n=100, marginal=marginal(), p_q=5e-2, n_reps=40000)
        smooth = steady_state_overflow_mc(
            rng=np.random.default_rng(11), conditional=True, **kw
        )
        raw = steady_state_overflow_mc(
            rng=np.random.default_rng(12), conditional=False, **kw
        )
        # Raw std_error is the exact binomial one: sqrt(p(1-p)/reps).
        expected_se = math.sqrt(
            raw.probability * (1.0 - raw.probability) / raw.n_reps
        )
        assert raw.std_error == pytest.approx(expected_se, rel=1e-6)
        tol = 4.0 * (smooth.std_error + raw.std_error) \
            + 0.1 * raw.probability
        assert abs(smooth.probability - raw.probability) < tol
