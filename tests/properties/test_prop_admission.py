"""Property-based tests for the admission criterion (hypothesis)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.admission import (
    AdmissionCriterion,
    admissible_flow_count,
    admissible_flow_count_alpha,
    overflow_probability_for_count,
)
from repro.core.gaussian import q_function

positive = st.floats(min_value=1e-3, max_value=1e3, allow_nan=False)
sigmas = st.floats(min_value=0.0, max_value=1e3, allow_nan=False)
alphas = st.floats(min_value=-5.0, max_value=8.0, allow_nan=False)
targets = st.floats(min_value=1e-9, max_value=0.45)


class TestClosedFormProperties:
    @given(mu=positive, sigma=sigmas, capacity=positive, alpha=alphas)
    @settings(max_examples=200)
    def test_solves_criterion(self, mu, sigma, capacity, alpha):
        """Eqn (42) always satisfies c - m*mu = sigma*alpha*sqrt(m)."""
        m = admissible_flow_count_alpha(mu, sigma, capacity, alpha)
        assert m >= 0.0
        lhs = capacity - m * mu
        rhs = sigma * alpha * math.sqrt(m)
        assert lhs == pytest.approx(rhs, rel=1e-6, abs=1e-6 * capacity)

    @given(mu=positive, sigma=sigmas, capacity=positive, alpha=alphas)
    @settings(max_examples=200)
    def test_never_exceeds_capacity_for_positive_alpha(
        self, mu, sigma, capacity, alpha
    ):
        m = admissible_flow_count_alpha(mu, sigma, capacity, max(alpha, 0.0))
        assert m * mu <= capacity * (1.0 + 1e-9)

    @given(
        mu=positive,
        sigma=st.floats(min_value=1e-3, max_value=10.0),
        capacity=positive,
        p1=targets,
        p2=targets,
    )
    @settings(max_examples=150)
    def test_monotone_in_target(self, mu, sigma, capacity, p1, p2):
        lo, hi = sorted([p1, p2])
        m_lo = admissible_flow_count(mu, sigma, capacity, lo)
        m_hi = admissible_flow_count(mu, sigma, capacity, hi)
        assert m_hi >= m_lo - 1e-9

    @given(
        mu=positive,
        s1=st.floats(min_value=0.0, max_value=10.0),
        s2=st.floats(min_value=0.0, max_value=10.0),
        capacity=positive,
        p=targets,
    )
    @settings(max_examples=150)
    def test_monotone_in_sigma(self, mu, s1, s2, capacity, p):
        lo, hi = sorted([s1, s2])
        m_calm = admissible_flow_count(mu, lo, capacity, p)
        m_bursty = admissible_flow_count(mu, hi, capacity, p)
        assert m_bursty <= m_calm + 1e-9

    @given(
        mu=positive,
        sigma=st.floats(min_value=1e-3, max_value=10.0),
        capacity=positive,
        p=targets,
    )
    @settings(max_examples=150)
    def test_roundtrip_through_overflow(self, mu, sigma, capacity, p):
        """admission -> overflow-for-count inverts to the target."""
        m = admissible_flow_count(mu, sigma, capacity, p)
        if m < 1e-6:  # degenerate: nothing admitted
            return
        achieved = overflow_probability_for_count(mu, sigma, capacity, m)
        assert achieved == pytest.approx(p, rel=1e-5)

    @given(
        mu=positive,
        sigma=st.floats(min_value=1e-3, max_value=10.0),
        capacity=positive,
        alpha=st.floats(min_value=0.0, max_value=8.0),
        scale=st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=150)
    def test_scale_invariance(self, mu, sigma, capacity, alpha, scale):
        """Rescaling all bandwidth units must leave the count unchanged."""
        base = admissible_flow_count_alpha(mu, sigma, capacity, alpha)
        scaled = admissible_flow_count_alpha(
            mu * scale, sigma * scale, capacity * scale, alpha
        )
        assert scaled == pytest.approx(base, rel=1e-9)


class TestCriterionObjectProperties:
    @given(
        capacity=positive,
        p=targets,
        mu=positive,
        sigma=st.floats(min_value=0.0, max_value=10.0),
    )
    @settings(max_examples=150)
    def test_slack_consistent_with_admits(self, capacity, p, mu, sigma):
        crit = AdmissionCriterion.from_target(capacity, p)
        count = crit.admissible_count(mu, sigma)
        n_current = int(count)  # at or just below the boundary
        assert crit.admits(mu, sigma, n_current) == (
            n_current + 1 <= count
        )
        assert crit.slack(mu, sigma, n_current) == pytest.approx(
            count - n_current
        )

    @given(capacity=positive, p=targets)
    @settings(max_examples=100)
    def test_target_roundtrip(self, capacity, p):
        crit = AdmissionCriterion.from_target(capacity, p)
        assert q_function(crit.alpha) == pytest.approx(p, rel=1e-8)
