"""Property-based invariant tests on the vectorized engine.

Small configurations (tiny capacity, short horizons) keep each example
fast while hypothesis explores the parameter space; the assertions are the
engine's conservation laws, which must hold for *every* configuration.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.controllers import CertaintyEquivalentController
from repro.core.estimators import make_estimator
from repro.simulation.fast import FastEngine, as_vector_model
from repro.traffic.marginals import TruncatedGaussianMarginal
from repro.traffic.rcbr import RcbrSource


def build_engine(capacity, holding_time, p_ce, memory, dt, seed, t_c=1.0):
    source = RcbrSource(TruncatedGaussianMarginal.from_cv(1.0, 0.3), t_c)
    return FastEngine(
        model=as_vector_model(source),
        controller=CertaintyEquivalentController(capacity, p_ce),
        estimator=make_estimator(memory if memory > 0 else None),
        capacity=capacity,
        holding_time=holding_time,
        dt=dt,
        rng=np.random.default_rng(seed),
    )


engine_params = dict(
    capacity=st.floats(min_value=5.0, max_value=40.0),
    holding_time=st.floats(min_value=5.0, max_value=200.0),
    p_ce=st.floats(min_value=1e-4, max_value=0.2),
    memory=st.floats(min_value=0.0, max_value=20.0),
    dt=st.floats(min_value=0.05, max_value=0.5),
    seed=st.integers(min_value=0, max_value=2**31),
)


class TestEngineInvariants:
    @given(**engine_params)
    @settings(max_examples=25, deadline=None)
    def test_conservation_and_positivity(
        self, capacity, holding_time, p_ce, memory, dt, seed
    ):
        engine = build_engine(capacity, holding_time, p_ce, memory, dt, seed)
        engine.run_until(20.0)
        # Flow conservation.
        assert engine.n_flows == engine.n_admitted - engine.n_departed
        assert engine.n_flows >= 0
        # Aggregate consistency: inactive slots carry zero rate.
        assert np.all(engine._rates[~engine._active] == 0.0)
        assert np.all(engine._rates[engine._active] > 0.0)
        assert engine.aggregate_rate == pytest.approx(
            float(engine._rates[engine._active].sum())
        )
        # Accounting bounds.
        assert 0.0 <= engine.link.overflow_fraction <= 1.0
        assert 0.0 <= engine.link.mean_utilization <= 1.0 + 1e-12
        assert engine.link.observed_time == pytest.approx(20.0, rel=0.05)

    @given(**engine_params)
    @settings(max_examples=15, deadline=None)
    def test_chunked_equals_single_run(
        self, capacity, holding_time, p_ce, memory, dt, seed
    ):
        single = build_engine(capacity, holding_time, p_ce, memory, dt, seed)
        chunked = build_engine(capacity, holding_time, p_ce, memory, dt, seed)
        single.run_until(10.0)
        for t in (2.5, 5.0, 7.5, 10.0):
            chunked.run_until(t)
        assert single.aggregate_rate == pytest.approx(chunked.aggregate_rate)
        assert single.n_admitted == chunked.n_admitted
        assert single.link.busy_time == pytest.approx(chunked.link.busy_time)

    @given(
        capacity=st.floats(min_value=5.0, max_value=40.0),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=15, deadline=None)
    def test_occupancy_respects_cap(self, capacity, seed):
        engine = build_engine(capacity, 50.0, 0.1, 0.0, 0.1, seed)
        engine.run_until(30.0)
        assert engine.n_flows <= engine._cap
