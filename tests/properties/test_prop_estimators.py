"""Property-based tests for the estimators."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimators import (
    ExponentialMemoryEstimator,
    MemorylessEstimator,
    SlidingWindowEstimator,
    cross_section,
)

rate_lists = st.lists(
    st.floats(min_value=0.0, max_value=100.0), min_size=2, max_size=40
)
segments = st.lists(
    st.tuples(
        st.floats(min_value=0.01, max_value=5.0),  # duration
        st.floats(min_value=0.1, max_value=10.0),  # mean level
    ),
    min_size=1,
    max_size=20,
)


class TestCrossSectionProperties:
    @given(rates=rate_lists)
    def test_moment_consistency(self, rates):
        cs = cross_section(rates)
        arr = np.asarray(rates)
        assert cs.mean == pytest.approx(arr.mean(), rel=1e-9, abs=1e-12)
        assert cs.variance >= 0.0
        assert cs.second_moment >= cs.mean**2 - 1e-9

    @given(rates=rate_lists, shift=st.floats(min_value=0.0, max_value=50.0))
    def test_variance_shift_invariant(self, rates, shift):
        base = cross_section(rates).variance
        shifted = cross_section([r + shift for r in rates]).variance
        assert shifted == pytest.approx(base, rel=1e-6, abs=1e-7)


class TestExponentialFilterProperties:
    @given(segs=segments, memory=st.floats(min_value=0.05, max_value=50.0))
    @settings(max_examples=100)
    def test_output_within_signal_hull(self, segs, memory):
        """The filtered mean always lies in [min, max] of the levels seen."""
        est = ExponentialMemoryEstimator(memory)
        t = 0.0
        levels = []
        for duration, level in segs:
            est.advance(t)
            est.observe(cross_section([level, level]))
            levels.append(level)
            t += duration
        est.advance(t)
        mu = est.estimate().mu
        assert min(levels) - 1e-9 <= mu <= max(levels) + 1e-9

    @given(segs=segments, memory=st.floats(min_value=0.05, max_value=50.0))
    @settings(max_examples=100)
    def test_linearity_in_signal(self, segs, memory):
        """Filtering k*signal gives k*filtered-signal (mean component)."""

        def run(scale: float) -> float:
            est = ExponentialMemoryEstimator(memory)
            t = 0.0
            for duration, level in segs:
                est.advance(t)
                est.observe(cross_section([level * scale] * 3))
                t += duration
            est.advance(t)
            return est.estimate().mu

        assert run(2.0) == pytest.approx(2.0 * run(1.0), rel=1e-9, abs=1e-9)

    @given(
        level_a=st.floats(min_value=0.1, max_value=10.0),
        level_b=st.floats(min_value=0.1, max_value=10.0),
        memory=st.floats(min_value=0.1, max_value=20.0),
        dt=st.floats(min_value=0.01, max_value=100.0),
    )
    def test_exact_two_level_relaxation(self, level_a, level_b, memory, dt):
        est = ExponentialMemoryEstimator(memory)
        est.observe(cross_section([level_a] * 2))
        est.advance(0.0)
        est.observe(cross_section([level_b] * 2))
        est.advance(dt)
        decay = math.exp(-dt / memory)
        expected = level_b * (1.0 - decay) + level_a * decay
        assert est.estimate().mu == pytest.approx(expected, rel=1e-9)


class TestSlidingWindowProperties:
    @given(segs=segments, window=st.floats(min_value=0.1, max_value=20.0))
    @settings(max_examples=100)
    def test_output_within_hull(self, segs, window):
        est = SlidingWindowEstimator(window)
        t = 0.0
        levels = []
        for duration, level in segs:
            est.advance(t)
            est.observe(cross_section([level, level]))
            levels.append(level)
            t += duration
        est.advance(t)
        mu = est.estimate().mu
        assert min(levels) - 1e-9 <= mu <= max(levels) + 1e-9

    @given(segs=segments)
    @settings(max_examples=60)
    def test_huge_window_is_global_time_average(self, segs):
        est = SlidingWindowEstimator(window=1e9)
        t = 0.0
        weighted, total = 0.0, 0.0
        for duration, level in segs:
            est.advance(t)
            est.observe(cross_section([level, level]))
            weighted += level * duration
            total += duration
            t += duration
        est.advance(t)
        assert est.estimate().mu == pytest.approx(weighted / total, rel=1e-9)


class TestMemorylessProperties:
    @given(rates=rate_lists)
    def test_is_identity_on_current_section(self, rates):
        est = MemorylessEstimator()
        cs = cross_section(rates)
        est.observe(cs)
        out = est.estimate()
        assert out.mu == cs.mean
        assert out.sigma == pytest.approx(math.sqrt(cs.variance))
