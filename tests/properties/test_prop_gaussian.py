"""Property-based tests for the Gaussian toolkit."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gaussian import log_q_function, phi, q_function, q_inverse

reasonable = st.floats(min_value=-30.0, max_value=30.0, allow_nan=False)
probabilities = st.floats(min_value=1e-12, max_value=1.0 - 1e-12)


class TestQFunctionProperties:
    @given(x=reasonable)
    def test_range(self, x):
        q = q_function(x)
        assert 0.0 <= q <= 1.0

    @given(x=reasonable)
    def test_reflection(self, x):
        assert q_function(x) + q_function(-x) == pytest.approx(1.0, abs=1e-12)

    @given(
        x=st.floats(min_value=-6.0, max_value=6.0),
        dx=st.floats(min_value=1e-4, max_value=1.0),
    )
    def test_strictly_decreasing(self, x, dx):
        # Restricted to |x| <= ~6+1: beyond that 1 - Q(x) saturates double
        # precision and strictness necessarily breaks.
        assert q_function(x + dx) < q_function(x)

    @given(x=st.floats(min_value=0.1, max_value=30.0))
    def test_tail_bounds(self, x):
        """phi(x) x/(1+x^2) <= Q(x) <= phi(x)/x (classical bounds)."""
        q = q_function(x)
        density = phi(x)
        assert q <= density / x * (1.0 + 1e-12)
        assert q >= density * x / (1.0 + x * x) * (1.0 - 1e-12)

    @given(p=probabilities)
    def test_inverse_roundtrip(self, p):
        assert q_function(q_inverse(p)) == pytest.approx(p, rel=1e-8)

    @given(x=st.floats(min_value=-6.0, max_value=8.0))
    def test_forward_roundtrip(self, x):
        # Below x ~ -6 the complement 1-Q(x) saturates double precision and
        # the inverse necessarily loses digits; restrict to the invertible
        # range.
        assert q_inverse(q_function(x)) == pytest.approx(x, abs=1e-6)

    @given(x=st.floats(min_value=-5.0, max_value=37.0))
    @settings(max_examples=200)
    def test_log_q_consistent(self, x):
        lq = log_q_function(x)
        assert lq <= 0.0
        direct = q_function(x)
        if direct > 1e-300:
            assert lq == pytest.approx(math.log(direct), rel=1e-8)


class TestPhiProperties:
    @given(x=reasonable)
    def test_positive_and_bounded(self, x):
        value = phi(x)
        assert 0.0 <= value <= 0.39894228040143276

    @given(x=reasonable)
    def test_even(self, x):
        assert phi(x) == pytest.approx(phi(-x), rel=1e-12)

    @given(x=st.floats(min_value=-8.0, max_value=8.0), h=st.floats(min_value=1e-5, max_value=1e-3))
    def test_is_derivative_of_one_minus_q(self, x, h):
        numeric = (q_function(x - h) - q_function(x + h)) / (2.0 * h)
        assert numeric == pytest.approx(phi(x), rel=1e-3, abs=1e-9)
