"""Property-based tests for the statistics layer."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.link import Link
from repro.simulation.stats import BatchMeans, OverflowRecorder

aggregates = st.lists(
    st.floats(min_value=0.0, max_value=20.0), min_size=2, max_size=200
)
intervals = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=10.0),  # duration
        st.booleans(),  # overloaded?
    ),
    min_size=1,
    max_size=100,
)


class TestRecorderProperties:
    @given(values=aggregates)
    def test_mean_in_unit_interval(self, values):
        rec = OverflowRecorder(capacity=10.0)
        for v in values:
            rec.record(v)
        assert 0.0 <= rec.mean <= 1.0
        assert rec.n_samples == len(values)

    @given(values=aggregates)
    def test_mean_matches_manual_count(self, values):
        rec = OverflowRecorder(capacity=10.0)
        for v in values:
            rec.record(v)
        manual = sum(1 for v in values if v > 10.0) / len(values)
        assert rec.mean == pytest.approx(manual)

    @given(values=aggregates)
    def test_merge_equals_single_stream(self, values):
        split = len(values) // 2
        joint = OverflowRecorder(capacity=10.0)
        a = OverflowRecorder(capacity=10.0)
        b = OverflowRecorder(capacity=10.0)
        for v in values:
            joint.record(v)
        for v in values[:split]:
            a.record(v)
        for v in values[split:]:
            b.record(v)
        a.merge(b)
        assert a.n_samples == joint.n_samples
        assert a.mean == pytest.approx(joint.mean)
        assert a.sum_aggregate == pytest.approx(joint.sum_aggregate)

    @given(values=aggregates)
    def test_gaussian_tail_in_range(self, values):
        rec = OverflowRecorder(capacity=10.0)
        for v in values:
            rec.record(v)
        assert 0.0 <= rec.gaussian_tail_estimate() <= 1.0


class TestBatchMeansProperties:
    @given(chunks=intervals, batch=st.floats(min_value=0.1, max_value=5.0))
    @settings(max_examples=100)
    def test_mean_bounded(self, chunks, batch):
        bm = BatchMeans(batch_duration=batch)
        for duration, overloaded in chunks:
            bm.add(duration, overloaded)
        assert 0.0 <= bm.mean <= 1.0

    @given(chunks=intervals, batch=st.floats(min_value=0.1, max_value=5.0))
    @settings(max_examples=100)
    def test_batch_count_matches_total_time(self, chunks, batch):
        bm = BatchMeans(batch_duration=batch)
        total = sum(d for d, _ in chunks)
        for duration, overloaded in chunks:
            bm.add(duration, overloaded)
        assert bm.n_batches == int(total / batch + 1e-9)

    @given(chunks=intervals)
    @settings(max_examples=100)
    def test_splitting_invariance(self, chunks):
        """Adding an interval in two halves must equal adding it whole."""
        whole = BatchMeans(batch_duration=1.0)
        halved = BatchMeans(batch_duration=1.0)
        for duration, overloaded in chunks:
            whole.add(duration, overloaded)
            halved.add(duration / 2.0, overloaded)
            halved.add(duration / 2.0, overloaded)
        assert halved.n_batches == whole.n_batches
        if whole.n_batches:
            assert halved.mean == pytest.approx(whole.mean, abs=1e-9)


class TestLinkProperties:
    @given(chunks=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=30.0),  # aggregate
            st.floats(min_value=0.0, max_value=5.0),  # duration
        ),
        min_size=1,
        max_size=100,
    ))
    @settings(max_examples=100)
    def test_integral_consistency(self, chunks):
        link = Link(capacity=10.0)
        for aggregate, duration in chunks:
            link.accumulate(aggregate, duration)
        assert 0.0 <= link.overflow_fraction <= 1.0
        assert 0.0 <= link.mean_utilization <= 1.0 + 1e-12
        assert link.busy_time <= link.observed_time + 1e-12
        assert link.bandwidth_time <= link.demand_time + 1e-9
        assert link.bandwidth_time <= 10.0 * link.observed_time + 1e-9
        total = sum(d for _, d in chunks)
        assert link.observed_time == pytest.approx(total, rel=1e-9, abs=1e-12)
