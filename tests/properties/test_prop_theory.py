"""Property-based tests for the theory formulas."""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.theory.finite_holding import (
    exponential_autocorrelation,
    overflow_probability_at,
)
from repro.theory.impulsive import (
    adjusted_target_impulsive,
    ce_overflow_probability,
)
from repro.theory.memoryful import (
    ContinuousLoadModel,
    overflow_probability_separation,
    variance_function,
)

targets = st.floats(min_value=1e-8, max_value=0.4)
time_scales = st.floats(min_value=0.05, max_value=100.0)
memories = st.floats(min_value=0.0, max_value=1000.0)
snrs = st.floats(min_value=0.05, max_value=1.0)


class TestImpulsiveProperties:
    @given(p_q=targets)
    def test_sqrt2_always_degrades(self, p_q):
        assert float(ce_overflow_probability(p_q)) > p_q

    @given(p_q=targets)
    def test_adjustment_is_involution_fixpoint(self, p_q):
        """Applying the sqrt(2) degradation to the adjusted target returns
        the original target."""
        p_ce = float(adjusted_target_impulsive(p_q))
        assert float(ce_overflow_probability(p_ce)) == pytest.approx(
            p_q, rel=1e-6
        )

    @given(p1=targets, p2=targets)
    def test_monotone(self, p1, p2):
        lo, hi = sorted([p1, p2])
        assert float(ce_overflow_probability(lo)) <= float(
            ce_overflow_probability(hi)
        ) * (1.0 + 1e-12)


class TestVarianceFunctionProperties:
    @given(
        t_c=time_scales,
        t_m=memories,
        t1=st.floats(min_value=0.0, max_value=1000.0),
        t2=st.floats(min_value=0.0, max_value=1000.0),
    )
    def test_monotone_nondecreasing(self, t_c, t_m, t1, t2):
        model = ContinuousLoadModel(
            correlation_time=t_c, holding_time_scaled=10.0, snr=0.3, memory=t_m
        )
        lo, hi = sorted([t1, t2])
        assert variance_function(lo, model) <= variance_function(hi, model) + 1e-12

    @given(t_c=time_scales, t_m=memories)
    def test_bounds(self, t_c, t_m):
        model = ContinuousLoadModel(
            correlation_time=t_c, holding_time_scaled=10.0, snr=0.3, memory=t_m
        )
        v0 = variance_function(0.0, model)
        v_inf = variance_function(1e9, model)
        assert 0.0 <= v0 <= 1.0 + 1e-12  # T_m/(T_c+T_m) <= 1
        assert 1.0 - 1e-12 <= v_inf <= 2.0 + 1e-12  # 1 + Var[Z] in [1, 2]


class TestSeparationFormulaProperties:
    @given(
        t_c=time_scales,
        t_h=st.floats(min_value=1.0, max_value=1000.0),
        snr=snrs,
        t_m=memories,
        alpha=st.floats(min_value=0.5, max_value=10.0),
    )
    @settings(max_examples=200)
    def test_range_and_memory_monotonicity(self, t_c, t_h, snr, t_m, alpha):
        base = ContinuousLoadModel(
            correlation_time=t_c, holding_time_scaled=t_h, snr=snr, memory=t_m
        )
        # Eqn (38) is only claimed under separation of time-scales; outside
        # gamma >> 1 its two terms can cross over non-monotonically.
        assume(base.gamma >= 10.0)
        more = ContinuousLoadModel(
            correlation_time=t_c,
            holding_time_scaled=t_h,
            snr=snr,
            memory=t_m + 1.0,
        )
        p_base = overflow_probability_separation(base, alpha=alpha)
        p_more = overflow_probability_separation(more, alpha=alpha)
        assert 0.0 <= p_more <= 1.0
        assert p_more <= p_base + 1e-12

    @given(
        t_c=time_scales,
        t_h=st.floats(min_value=1.0, max_value=1000.0),
        snr=snrs,
        t_m=memories,
        a1=st.floats(min_value=0.5, max_value=10.0),
        a2=st.floats(min_value=0.5, max_value=10.0),
    )
    @settings(max_examples=200)
    def test_monotone_in_alpha(self, t_c, t_h, snr, t_m, a1, a2):
        model = ContinuousLoadModel(
            correlation_time=t_c, holding_time_scaled=t_h, snr=snr, memory=t_m
        )
        lo, hi = sorted([a1, a2])
        p_lo = overflow_probability_separation(model, alpha=lo)
        p_hi = overflow_probability_separation(model, alpha=hi)
        assert p_hi <= p_lo + 1e-12


class TestFiniteHoldingProperties:
    @given(
        t=st.floats(min_value=0.0, max_value=1000.0),
        p_q=targets,
        snr=snrs,
        t_h=st.floats(min_value=0.5, max_value=1000.0),
        t_c=time_scales,
    )
    @settings(max_examples=200)
    def test_range(self, t, p_q, snr, t_h, t_c):
        rho = exponential_autocorrelation(t_c)
        p = overflow_probability_at(
            t, p_q=p_q, snr=snr, holding_time_scaled=t_h, rho=rho
        )
        assert 0.0 <= p <= 0.5  # drift term is positive, so never above 1/2

    @given(
        p_q=targets,
        snr=snrs,
        t_c=time_scales,
        t_h1=st.floats(min_value=0.5, max_value=1000.0),
        t_h2=st.floats(min_value=0.5, max_value=1000.0),
        t=st.floats(min_value=0.01, max_value=100.0),
    )
    @settings(max_examples=200)
    def test_monotone_in_holding_time(self, p_q, snr, t_c, t_h1, t_h2, t):
        assume(abs(t_h1 - t_h2) > 1e-6)
        rho = exponential_autocorrelation(t_c)
        lo, hi = sorted([t_h1, t_h2])
        p_short = overflow_probability_at(
            t, p_q=p_q, snr=snr, holding_time_scaled=lo, rho=rho
        )
        p_long = overflow_probability_at(
            t, p_q=p_q, snr=snr, holding_time_scaled=hi, rho=rho
        )
        assert p_long >= p_short - 1e-15
