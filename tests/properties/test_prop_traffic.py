"""Property-based tests for the traffic substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traffic.heterogeneous import mixture_moments
from repro.traffic.marginals import TruncatedGaussianMarginal, UniformMarginal
from repro.traffic.trace import Trace, rcbr_smooth


class TestTruncatedGaussianProperties:
    @given(
        mean=st.floats(min_value=0.1, max_value=100.0),
        cv=st.floats(min_value=0.01, max_value=1.5),
    )
    @settings(max_examples=100)
    def test_truncation_raises_mean_lowers_cv(self, mean, cv):
        m = TruncatedGaussianMarginal.from_cv(mean, cv)
        assert m.mean >= mean  # cutting the left tail can only raise it
        assert m.std <= cv * mean * (1.0 + 1e-9)

    @given(
        mean=st.floats(min_value=0.1, max_value=100.0),
        cv=st.floats(min_value=0.01, max_value=1.5),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=50)
    def test_samples_positive(self, mean, cv, seed):
        m = TruncatedGaussianMarginal.from_cv(mean, cv)
        draws = m.sample(np.random.default_rng(seed), 100)
        assert np.all(draws > 0.0)


class TestMixtureMomentProperties:
    weights = st.lists(st.floats(min_value=0.01, max_value=5.0), min_size=1, max_size=6)

    @given(
        weights=weights,
        data=st.data(),
    )
    @settings(max_examples=100)
    def test_law_of_total_variance(self, weights, data):
        k = len(weights)
        means = data.draw(
            st.lists(
                st.floats(min_value=0.1, max_value=10.0), min_size=k, max_size=k
            )
        )
        stds = data.draw(
            st.lists(
                st.floats(min_value=0.0, max_value=5.0), min_size=k, max_size=k
            )
        )
        m = mixture_moments(weights, means, stds)
        assert m.between_class_variance >= -1e-9
        assert m.variance == pytest.approx(
            m.within_class_variance + m.between_class_variance
        )
        assert min(means) - 1e-9 <= m.mean <= max(means) + 1e-9

    @given(
        mu=st.floats(min_value=0.1, max_value=10.0),
        sd=st.floats(min_value=0.0, max_value=3.0),
        weights=weights,
    )
    @settings(max_examples=100)
    def test_identical_classes_collapse(self, mu, sd, weights):
        k = len(weights)
        m = mixture_moments(weights, [mu] * k, [sd] * k)
        assert m.mean == pytest.approx(mu)
        assert m.between_class_variance == pytest.approx(0.0, abs=1e-9)


class TestTraceSmoothingProperties:
    traces = st.lists(
        st.floats(min_value=0.0, max_value=10.0), min_size=8, max_size=200
    )

    @given(rates=traces, per=st.integers(min_value=1, max_value=4))
    @settings(max_examples=100)
    def test_smoothing_preserves_trimmed_mean(self, rates, per):
        trace = Trace(rates=np.asarray(rates), segment_time=1.0)
        n_periods = len(rates) // per
        if n_periods < 2:
            return
        smoothed = rcbr_smooth(trace, renegotiation_period=float(per))
        trimmed = np.asarray(rates)[: n_periods * per]
        assert smoothed.mean == pytest.approx(trimmed.mean(), rel=1e-9, abs=1e-12)

    @given(rates=traces, per=st.integers(min_value=2, max_value=4))
    @settings(max_examples=100)
    def test_smoothing_never_increases_variance(self, rates, per):
        trace = Trace(rates=np.asarray(rates), segment_time=1.0)
        if len(rates) // per < 2:
            return
        smoothed = rcbr_smooth(trace, renegotiation_period=float(per))
        # Variance of block means <= variance of the (trimmed) series.
        trimmed = np.asarray(rates)[: (len(rates) // per) * per]
        assert smoothed.std <= trimmed.std() + 1e-9

    @given(rates=traces)
    def test_bounds(self, rates):
        trace = Trace(rates=np.asarray(rates), segment_time=0.5)
        assert 0.0 <= trace.mean <= trace.peak
        assert trace.duration == pytest.approx(0.5 * len(rates))


class TestUniformMarginalProperties:
    @given(
        low=st.floats(min_value=0.0, max_value=10.0),
        width=st.floats(min_value=0.01, max_value=10.0),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=50)
    def test_support_respected(self, low, width, seed):
        m = UniformMarginal(low, low + width)
        draws = m.sample(np.random.default_rng(seed), 50)
        assert np.all(draws >= low) and np.all(draws <= low + width)
        assert low <= m.mean <= low + width
