"""Shared helpers for the runtime test suite.

The deterministic backbone: links built on memoryless estimators over a
:class:`TraceFeed` of known cross-sections, so every admission target is a
closed-form number (eqn (42)) the tests can compute independently.
"""

from __future__ import annotations

import pytest

from repro.core.controllers import CertaintyEquivalentController
from repro.core.estimators import CrossSection, MemorylessEstimator
from repro.runtime.feed import TraceFeed
from repro.runtime.link import ManagedLink
from repro.runtime.metrics import MetricsRegistry

CAPACITY = 20.0
HOLDING_TIME = 100.0
P_PLAIN = 0.05
ALPHA_CONSERVATIVE = 3.0
STALE_HORIZON = 5.0


def make_section(n=6, mean=1.0, var=0.09) -> CrossSection:
    """A cross-section with exact moments (second moment made consistent)."""
    m2 = mean * mean + var * (n - 1) / n if n else 0.0
    return CrossSection(n=n, mean=mean, second_moment=m2, variance=var)


def make_link(
    name="test",
    *,
    sections=None,
    cycle=True,
    period=1.0,
    capacity=CAPACITY,
    stale_horizon=STALE_HORIZON,
    registry=None,
) -> ManagedLink:
    """A link with closed-form targets: plain ~17.91, conservative ~16.36."""
    if sections is None:
        sections = [make_section()]
    feed = TraceFeed(sections, period=period, cycle=cycle)
    return ManagedLink(
        name,
        capacity=capacity,
        holding_time=HOLDING_TIME,
        mean_rate=1.0,
        feed=feed,
        estimator=MemorylessEstimator(),
        controller=CertaintyEquivalentController(capacity, P_PLAIN),
        conservative_controller=CertaintyEquivalentController(
            capacity, alpha=ALPHA_CONSERVATIVE
        ),
        stale_horizon=stale_horizon,
        registry=registry if registry is not None else MetricsRegistry(),
    )


@pytest.fixture
def link() -> ManagedLink:
    return make_link()
