"""Differential tests for the batched admission path.

The contract under test: ``admit_many(k, now)`` is semantically identical
to ``k`` sequential ``admit(now)`` calls at the same timestamp -- same
decisions (order included), same counter increments, same final occupancy
-- across every decision path the link has (healthy target, degraded
conservative target, bootstrap, no-measurement).  The gateway layer adds
batched placement; hash and round-robin placements must be exactly
sequential-equivalent, least-loaded is a documented heuristic (spreads on
predicted load) and is only checked for its spreading behaviour.
"""

import math

import pytest

from repro.errors import ParameterError, RuntimeStateError
from repro.runtime.gateway import AdmissionGateway
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.replay import replay

from .conftest import STALE_HORIZON, make_link, make_section

LINK_COUNTERS = ("admits", "rejects", "departures", "measurements",
                 "degradations")


def link_counters(link):
    """The link's counter values keyed by short name (missing -> 0)."""
    counters = link.registry.snapshot()["counters"]
    prefix = f"link.{link.name}."
    return {
        short: counters.get(prefix + short, 0.0) for short in LINK_COUNTERS
    }


def assert_same_decision(batched, sequential):
    """Field-wise equality, NaN-aware for the estimator-derived floats."""
    assert batched.admitted == sequential.admitted
    assert batched.reason == sequential.reason
    assert batched.n_flows == sequential.n_flows
    assert batched.degraded == sequential.degraded
    for field in ("target", "mu_hat", "sigma_hat"):
        b, s = getattr(batched, field), getattr(sequential, field)
        if math.isnan(s):
            assert math.isnan(b)
        else:
            assert b == pytest.approx(s)


def assert_batch_matches_sequential(prepare, k, now, **link_kwargs):
    """Run the differential: one burst vs k sequential admits at ``now``."""
    batch_link = make_link("batch", **link_kwargs)
    seq_link = make_link("seq", **link_kwargs)
    prepare(batch_link)
    prepare(seq_link)

    batched = batch_link.admit_many(k, now)
    sequential = [seq_link.admit(now) for _ in range(k)]

    assert len(batched) == k
    for b, s in zip(batched, sequential):
        assert_same_decision(b, s)
    assert batch_link.n_flows == seq_link.n_flows
    batch_counts = link_counters(batch_link)
    seq_counts = link_counters(seq_link)
    assert batch_counts == seq_counts
    return batched


class TestLinkDifferential:
    def test_healthy_burst_from_empty(self):
        decisions = assert_batch_matches_sequential(
            lambda link: link.tick(0.0), k=25, now=0.1
        )
        admitted = [d for d in decisions if d.admitted]
        assert len(admitted) == 17  # floor of the plain target ~17.91
        assert all(d.reason == "target" for d in decisions)
        # Accept-prefix shape: no admit after the first reject.
        flags = [d.admitted for d in decisions]
        assert flags == sorted(flags, reverse=True)

    def test_healthy_burst_mid_fill(self):
        def prepare(link):
            link.tick(0.0)
            for i in range(10):
                assert link.admit(0.01 + 1e-3 * i).admitted

        decisions = assert_batch_matches_sequential(prepare, k=12, now=0.5)
        assert sum(d.admitted for d in decisions) == 7  # 10 + 7 = 17

    def test_degraded_burst_uses_conservative_target(self):
        # Silence (paused feed) past the horizon degrades without tripping
        # the breaker; the burst runs against the conservative target.
        def prepare(link):
            link.tick(0.0)
            link.feed.pause()

        decisions = assert_batch_matches_sequential(
            prepare, k=40, now=STALE_HORIZON + 1.0
        )
        assert sum(d.admitted for d in decisions) == 16  # conservative ~16.36
        assert all(d.degraded for d in decisions)
        assert all(d.reason == "conservative-target" for d in decisions)

    def test_quarantined_burst_fails_closed(self):
        # An exhausted feed past the horizon trips the breaker: the whole
        # burst is rejected, identically to sequential calls.
        def prepare(link):
            link.tick(0.0)

        decisions = assert_batch_matches_sequential(
            prepare, k=7, now=STALE_HORIZON + 1.0, cycle=False
        )
        assert not any(d.admitted for d in decisions)
        assert all(d.reason == "quarantined" for d in decisions)
        assert all(d.health == "quarantined" for d in decisions)

    def test_bootstrap_prefix_on_measured_empty_system(self):
        sections = [make_section(n=0, mean=0.0, var=0.0)]
        decisions = assert_batch_matches_sequential(
            lambda link: None, k=4, now=0.0,
            sections=sections, cycle=False,
        )
        assert decisions[0].admitted and decisions[0].reason == "bootstrap"
        # The zero estimate blocks everything after the bootstrap flow.
        assert not any(d.admitted for d in decisions[1:])

    def test_never_measured_burst_rejects(self):
        decisions = assert_batch_matches_sequential(
            lambda link: link.feed.pause(), k=3, now=0.5
        )
        assert not any(d.admitted for d in decisions)
        assert all(d.reason == "no-measurement" for d in decisions)
        assert all(math.isnan(d.target) for d in decisions)

    def test_empty_and_invalid_bursts(self, link):
        assert link.admit_many(0, 0.0) == []
        with pytest.raises(ParameterError):
            link.admit_many(-1, 0.0)

    def test_depart_many(self, link):
        link.tick(0.0)
        admitted = sum(d.admitted for d in link.admit_many(20, 0.1))
        link.depart_many(5, 0.2)
        assert link.n_flows == admitted - 5
        assert link_counters(link)["departures"] == 5.0

    def test_depart_many_rejects_overdraw(self, link):
        link.tick(0.0)
        link.admit_many(3, 0.1)
        with pytest.raises(RuntimeStateError):
            link.depart_many(99, 0.2)
        assert link.n_flows == 3  # untouched


def make_gateway(n_links=2, policy="hash", tracer=None, **link_kwargs):
    registry = MetricsRegistry()
    links = [
        make_link(f"link{i}", registry=registry, **link_kwargs)
        for i in range(n_links)
    ]
    for link in links:
        link.tracer = tracer
    return AdmissionGateway(links, placement=policy, registry=registry)


class TestGatewayBatch:
    @pytest.mark.parametrize("policy", ["hash", "round-robin"])
    def test_matches_sequential_for_stateless_placement(self, policy):
        batch_gw = make_gateway(policy=policy)
        seq_gw = make_gateway(policy=policy)
        for gw in (batch_gw, seq_gw):
            gw.tick(0.0)
        flow_ids = [f"flow-{i}" for i in range(30)]

        batched = batch_gw.admit_many(flow_ids, 0.1)
        sequential = [seq_gw.admit(fid, 0.1) for fid in flow_ids]

        for b, s in zip(batched, sequential):
            assert b.link == s.link
            assert_same_decision(b, s)
        for fid in flow_ids:
            seq_link = seq_gw.link_of(fid)
            batch_link = batch_gw.link_of(fid)
            assert (seq_link.name if seq_link else None) == (
                batch_link.name if batch_link else None
            )
        assert batch_gw.n_flows == seq_gw.n_flows
        b_counters = batch_gw.snapshot()["counters"]
        s_counters = seq_gw.snapshot()["counters"]
        for name in ("gateway.admits", "gateway.rejects"):
            assert b_counters[name] == s_counters[name]

    def test_least_loaded_spreads_burst(self):
        gateway = make_gateway(n_links=4, policy="least-loaded")
        gateway.tick(0.0)
        decisions = gateway.admit_many(list(range(8)), 0.1)
        per_link = {}
        for decision in decisions:
            per_link[decision.link] = per_link.get(decision.link, 0) + 1
        # Water-filling over equal links must not pile on one link.
        assert per_link == {f"link{i}": 2 for i in range(4)}

    def test_duplicate_flow_in_burst_raises(self):
        gateway = make_gateway()
        gateway.tick(0.0)
        with pytest.raises(RuntimeStateError):
            gateway.admit_many(["a", "b", "a"], 0.1)
        assert gateway.n_flows == 0  # validation precedes any admission

    def test_already_active_flow_raises(self):
        gateway = make_gateway()
        gateway.tick(0.0)
        assert gateway.admit("a", 0.1).admitted
        with pytest.raises(RuntimeStateError):
            gateway.admit_many(["b", "a"], 0.2)
        assert gateway.n_flows == 1

    def test_empty_burst(self):
        gateway = make_gateway()
        assert gateway.admit_many([], 0.0) == []

    def test_depart_many_bills_the_right_links(self):
        gateway = make_gateway(policy="round-robin")
        gateway.tick(0.0)
        flow_ids = list(range(10))
        decisions = gateway.admit_many(flow_ids, 0.1)
        admitted = [f for f, d in zip(flow_ids, decisions) if d.admitted]
        before = {link.name: link.n_flows for link in gateway.links}
        leaving = admitted[:4]
        expected_per_link = {}
        for fid in leaving:
            name = gateway.link_of(fid).name
            expected_per_link[name] = expected_per_link.get(name, 0) + 1
        gateway.depart_many(leaving, 0.2)
        assert gateway.n_flows == len(admitted) - len(leaving)
        for link in gateway.links:
            assert link.n_flows == before[link.name] - expected_per_link.get(
                link.name, 0
            )

    def test_depart_many_validates_before_mutating(self):
        gateway = make_gateway()
        gateway.tick(0.0)
        gateway.admit_many(["a", "b"], 0.1)
        n_before = gateway.n_flows
        with pytest.raises(RuntimeStateError):
            gateway.depart_many(["a", "missing"], 0.2)
        assert gateway.n_flows == n_before  # nothing was removed
        gateway.depart_many(["a"], 0.3)  # still departable afterwards
        with pytest.raises(RuntimeStateError):
            gateway.depart_many(["b", "b"], 0.4)  # duplicate in one burst


class TestTracedDifferential:
    """Tracing must not perturb the batched == sequential equivalence,
    and both paths must produce the identical decision stream + digest."""

    @pytest.mark.parametrize("policy", ["hash", "round-robin"])
    def test_traced_batch_digest_equals_traced_sequential(self, policy):
        from repro.runtime.observability import DecisionTracer

        batch_tracer = DecisionTracer()
        seq_tracer = DecisionTracer()
        batch_gw = make_gateway(policy=policy, tracer=batch_tracer)
        seq_gw = make_gateway(policy=policy, tracer=seq_tracer)
        for gw in (batch_gw, seq_gw):
            gw.tick(0.0)
        flow_ids = [f"flow-{i}" for i in range(30)]

        batched = batch_gw.admit_many(flow_ids, 0.1)
        sequential = [seq_gw.admit(fid, 0.1) for fid in flow_ids]
        for b, s in zip(batched, sequential):
            assert b.link == s.link
            assert_same_decision(b, s)

        assert batch_tracer.decisions == seq_tracer.decisions == 30
        assert batch_tracer.digest() == seq_tracer.digest()
        # The deterministic event streams are identical too (latency, the
        # one wall-clock field, is excluded by deterministic mode).
        batch_lines = list(batch_tracer.event_lines(deterministic=True))
        seq_lines = list(seq_tracer.event_lines(deterministic=True))
        assert batch_lines == seq_lines

    def test_traced_decisions_match_returned_order(self):
        from repro.runtime.observability import DecisionTracer

        tracer = DecisionTracer()
        gateway = make_gateway(policy="round-robin", tracer=tracer)
        gateway.tick(0.0)
        flow_ids = [f"b-{i}" for i in range(25)]
        decisions = gateway.admit_many(flow_ids, 0.1)
        events = [e for e in tracer.events if e.kind in ("admit", "reject")]
        assert [e.flow_id for e in events] == flow_ids
        assert [e.kind == "admit" for e in events] == [
            d.admitted for d in decisions
        ]


class TestReplayBatchMode:
    def test_batched_replay_reports_bursts(self):
        report = replay(
            make_gateway(n_links=2, policy="least-loaded"),
            n_events=2000,
            arrival_rate=4.0,
            holding_time=50.0,
            tick_period=1.0,
            seed=7,
            batch_window=1.0,
        )
        assert report.batches > 0
        assert report.arrivals == report.admitted + report.rejected
        assert report.admitted > 0
        assert report.final_flows <= report.admitted

    def test_sequential_replay_has_no_batches(self):
        report = replay(
            make_gateway(n_links=2, policy="least-loaded"),
            n_events=500,
            arrival_rate=4.0,
            holding_time=50.0,
            tick_period=1.0,
            seed=7,
        )
        assert report.batches == 0

    def test_batch_window_must_be_positive(self):
        with pytest.raises(ParameterError):
            replay(
                make_gateway(),
                n_events=10,
                arrival_rate=1.0,
                holding_time=10.0,
                tick_period=1.0,
                batch_window=0.0,
            )
