"""Tests for the fault-injection layer (FaultPlan / FaultyFeed)."""

import json
import math

import pytest

from repro.errors import ParameterError
from repro.runtime.faults import (
    FAULT_KINDS,
    CorruptSpec,
    FaultPlan,
    FaultyFeed,
    FeedFaults,
    Window,
    default_chaos_plan,
)
from repro.runtime.feed import TraceFeed
from repro.runtime.gateway import AdmissionGateway
from repro.runtime.metrics import MetricsRegistry

from .conftest import make_link, make_section


def trace(sections=None, *, period=1.0, cycle=True):
    if sections is None:
        sections = [make_section(n=5 + i, mean=1.0 + 0.1 * i) for i in range(4)]
    return TraceFeed(sections, period=period, cycle=cycle)


def drain(feed, times, n_flows=5):
    """Poll the feed at each time; returns the emitted (t, section) pairs."""
    out = []
    for t in times:
        section = feed.measure(t, n_flows)
        if section is not None:
            out.append((t, section))
    return out


class TestWindow:
    def test_half_open_containment(self):
        w = Window(2.0, 3.0)
        assert not w.contains(1.999)
        assert w.contains(2.0)
        assert w.contains(4.999)
        assert not w.contains(5.0)

    def test_open_ended_by_default(self):
        assert Window(1.0).contains(1e12)

    def test_validation(self):
        with pytest.raises(ParameterError):
            Window(-1.0, 1.0)
        with pytest.raises(ParameterError):
            Window(0.0, 0.0)


class TestParsing:
    def test_windows_accept_pairs_and_dicts(self):
        faults = FeedFaults.from_dict(
            {"outages": [[1.0, 2.0], {"start": 5.0}]}
        )
        assert faults.outages[0] == Window(1.0, 2.0)
        assert faults.outages[1].start == 5.0
        assert math.isinf(faults.outages[1].duration)

    def test_bad_window_shape(self):
        with pytest.raises(ParameterError, match="bad window"):
            FeedFaults.from_dict({"outages": [3.0]})
        with pytest.raises(ParameterError, match="unknown window keys"):
            FeedFaults.from_dict({"outages": [{"start": 0.0, "stop": 1.0}]})

    def test_unknown_fault_keys_rejected(self):
        # The error must name both the offending key and every valid kind,
        # so a typo'd plan is a one-glance fix.
        with pytest.raises(
            ParameterError,
            match=r"unknown fault kind\(s\): drop_probablity; valid kinds: ",
        ) as excinfo:
            FeedFaults.from_dict({"drop_probablity": 0.5})  # typo'd key
        for kind in FAULT_KINDS:
            assert kind in str(excinfo.value)

    def test_non_mapping_fault_spec_rejected(self):
        with pytest.raises(ParameterError, match="must be a mapping"):
            FeedFaults.from_dict(["outages"])

    def test_corrupt_shorthand_burst(self):
        spec = CorruptSpec.from_dict(
            {"mode": "spike", "factor": 3.0, "start": 10.0, "duration": 5.0}
        )
        assert spec.applies(12.0)
        assert not spec.applies(20.0)

    def test_corrupt_validation(self):
        with pytest.raises(ParameterError, match="unknown corrupt mode"):
            CorruptSpec(mode="garbage")
        with pytest.raises(ParameterError, match="probability"):
            CorruptSpec(probability=1.5)
        with pytest.raises(ParameterError, match="spike factor"):
            CorruptSpec(mode="spike", factor=0.0)
        with pytest.raises(ParameterError, match="unknown corrupt keys"):
            CorruptSpec.from_dict({"mode": "nan", "when": 3})

    def test_feed_faults_validation(self):
        with pytest.raises(ParameterError, match="drop_probability"):
            FeedFaults(drop_probability=2.0)
        with pytest.raises(ParameterError, match="latency"):
            FeedFaults(latency=-1.0)
        with pytest.raises(ParameterError, match="clock_skew"):
            FeedFaults(clock_skew=math.inf)

    def test_constructor_coerces_from_dict_shapes(self):
        faults = FeedFaults(
            outages=[[1.0, 2.0]],
            corrupt={"mode": "nan", "start": 5.0},
            stuck=[{"start": 9.0}],
        )
        assert faults.outages == (Window(1.0, 2.0),)
        assert isinstance(faults.corrupt, CorruptSpec)
        assert faults.corrupt.applies(6.0)
        assert faults.stuck[0].start == 9.0
        with pytest.raises(ParameterError, match="corrupt must be"):
            FeedFaults(corrupt="nan")

    def test_plan_from_dict_and_unknown_keys(self):
        plan = FaultPlan.from_dict(
            {"seed": 9, "links": {"a": {"drop_probability": 0.5}}}
        )
        assert plan.seed == 9
        assert plan.links["a"].drop_probability == 0.5
        with pytest.raises(ParameterError, match="unknown fault-plan keys"):
            FaultPlan.from_dict({"link": {}})
        with pytest.raises(ParameterError, match="must be a mapping"):
            FaultPlan.from_dict({"links": ["a"]})
        with pytest.raises(ParameterError, match="must be a FeedFaults"):
            FaultPlan(links={"a": {"drop_probability": 0.5}})

    def test_plan_from_json_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(
            {"seed": 3, "links": {"x": {"outages": [[0.0, 1.0]]}}}
        ))
        plan = FaultPlan.from_file(path)
        assert plan.seed == 3
        assert plan.links["x"].outages == (Window(0.0, 1.0),)

    def test_plan_from_yaml_file(self, tmp_path):
        pytest.importorskip("yaml")
        path = tmp_path / "plan.yaml"
        path.write_text(
            "seed: 4\nlinks:\n  x:\n    drop_probability: 0.25\n"
        )
        plan = FaultPlan.from_file(path)
        assert plan.seed == 4
        assert plan.links["x"].drop_probability == 0.25

    def test_plan_file_must_hold_mapping(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text("[1, 2]")
        with pytest.raises(ParameterError, match="mapping"):
            FaultPlan.from_file(path)

    def test_feed_seed_is_stable_and_name_dependent(self):
        plan = FaultPlan(seed=5)
        assert plan.feed_seed("a") == plan.feed_seed("a")
        assert plan.feed_seed("a") != plan.feed_seed("b")


class TestFaultyFeed:
    def test_outage_window_silences_feed(self):
        feed = FaultyFeed(trace(), FeedFaults(outages=(Window(1.5, 2.0),)))
        emitted = drain(feed, [0.0, 1.0, 2.0, 3.0])
        assert [t for t, _ in emitted] == [0.0, 1.0]
        assert feed.injected["outage_polls"] == 2
        assert feed.staleness(3.0) == pytest.approx(2.0)  # aging through it
        assert drain(feed, [4.0])  # past the window the feed resumes

    def test_drop_probability_one_loses_everything(self):
        feed = FaultyFeed(trace(), FeedFaults(drop_probability=1.0), seed=1)
        assert drain(feed, [0.0, 1.0, 2.0]) == []
        assert feed.injected["dropped"] == 3

    def test_corrupt_nan_and_negative_and_spike(self):
        for mode, check in (
            ("nan", lambda s: math.isnan(s.mean)),
            ("negative", lambda s: s.mean < 0.0),
            ("spike", lambda s: s.mean == pytest.approx(10.0)),
        ):
            feed = FaultyFeed(
                trace([make_section(n=5, mean=1.0)]),
                FeedFaults(corrupt=CorruptSpec(mode=mode, probability=1.0)),
            )
            [(_, section)] = drain(feed, [0.0])
            assert check(section), mode
            assert feed.injected["corrupted"] == 1

    def test_corrupt_burst_window_only(self):
        feed = FaultyFeed(
            trace(),
            FeedFaults(corrupt=CorruptSpec(
                mode="nan", probability=1.0, windows=(Window(1.0, 1.5),)
            )),
        )
        emitted = dict(drain(feed, [0.0, 1.0, 2.0, 3.0]))
        assert not math.isnan(emitted[0.0].mean)
        assert math.isnan(emitted[1.0].mean)
        assert math.isnan(emitted[2.0].mean)
        assert not math.isnan(emitted[3.0].mean)

    def test_stuck_window_replays_last_value_without_consuming(self):
        inner = trace(period=1.0)
        feed = FaultyFeed(inner, FeedFaults(stuck=(Window(0.5, 2.0),)))
        emitted = drain(feed, [0.0, 1.0, 2.0, 3.0])
        sections = [s for _, s in emitted]
        # The t=0 section is replayed at t=1 and t=2; the trace resumes at 3.
        assert sections[1].n == sections[0].n == sections[2].n
        assert sections[3].n == sections[0].n + 1
        assert feed.injected["stuck"] == 2
        assert inner._cursor == 2  # only two real sections consumed

    def test_latency_delays_delivery(self):
        feed = FaultyFeed(trace(period=1.0), FeedFaults(latency=1.0))
        assert feed.measure(0.0, 5) is None  # measured, queued
        section = feed.measure(1.0, 5)
        assert section is not None and section.n == 5  # the t=0 sample
        assert feed.injected["delayed"] >= 1

    def test_exhausted_waits_for_latency_queue(self):
        inner = trace([make_section()], cycle=False)
        feed = FaultyFeed(inner, FeedFaults(latency=1.0))
        assert feed.measure(0.0, 5) is None
        assert not feed.exhausted  # inner is done but one sample is in flight
        assert feed.measure(1.0, 5) is not None
        assert feed.exhausted

    def test_same_seed_same_fault_realization(self):
        faults = FeedFaults(
            drop_probability=0.5,
            corrupt=CorruptSpec(mode="nan", probability=0.5),
        )
        times = [float(t) for t in range(50)]

        def run(seed):
            feed = FaultyFeed(trace(), faults, seed=seed)
            emitted = drain(feed, times)
            # repr keeps NaN-corrupted means comparable (nan != nan).
            return [(t, s.n, repr(s.mean)) for t, s in emitted]

        assert run(7) == run(7)
        assert run(7) != run(8)


class TestPlanWrap:
    def test_wrap_replaces_targeted_feeds(self):
        registry = MetricsRegistry()
        links = [make_link(f"l{i}", registry=registry) for i in range(2)]
        gateway = AdmissionGateway(links, registry=registry)
        plan = FaultPlan(links={"l1": FeedFaults(drop_probability=1.0)})
        wrapped = plan.wrap(gateway)
        assert set(wrapped) == {"l1"}
        assert gateway.link("l1").feed is wrapped["l1"]
        assert isinstance(gateway.link("l1").feed, FaultyFeed)
        assert not isinstance(gateway.link("l0").feed, FaultyFeed)

    def test_wrap_unknown_link_raises(self):
        registry = MetricsRegistry()
        gateway = AdmissionGateway(
            [make_link("only", registry=registry)], registry=registry
        )
        plan = FaultPlan(links={"nope": FeedFaults()})
        with pytest.raises(ParameterError, match="no link named"):
            plan.wrap(gateway)


def counter_feed(period=1.0, seed=3, width=32):
    from repro.telemetry import CounterPollerFeed, SyntheticCounterSource
    from repro.traffic.rcbr import paper_rcbr_source

    source = SyntheticCounterSource(
        paper_rcbr_source(), seed=seed, width=width, bytes_per_unit=1e6
    )
    return CounterPollerFeed(source, period, width=width, rate_scale=1e6)


class TestCounterFaults:
    def test_counter_reset_fires_once_per_window(self):
        inner = counter_feed()
        feed = FaultyFeed(
            inner, FeedFaults(counter_resets=(Window(2.5, 2.0),))
        )
        drain(feed, [0.0, 1.0, 2.0])  # baseline + two clean epochs
        before = inner.telemetry_snapshot()["resets"]
        drain(feed, [3.0, 4.0, 5.0, 6.0])
        assert feed.injected["counter_resets"] == 1  # once, not per poll
        snap = inner.telemetry_snapshot()
        assert snap["resets"] > before  # estimators saw the zeroed counters
        # Past the reset interval the feed derives rates again.
        assert feed.measure(7.0, 4) is not None

    def test_counter_offset_forces_wrap(self):
        inner = counter_feed(width=32)
        feed = FaultyFeed(inner, FeedFaults(counter_offset=2_000_000))
        assert feed.injected["counter_offset"] == 1
        drain(feed, [float(t) for t in range(8)])
        assert inner.telemetry_snapshot()["wraps"] > 0

    def test_counter_faults_need_a_counter_backed_feed(self):
        with pytest.raises(ParameterError, match="no cumulative counters"):
            FaultyFeed(
                trace(), FeedFaults(counter_resets=(Window(0.0, 1.0),)),
                name="l0",
            )
        with pytest.raises(ParameterError, match="no cumulative counters"):
            FaultyFeed(trace(), FeedFaults(counter_offset=1_000))

    def test_counter_fault_parsing(self):
        faults = FeedFaults.from_dict(
            {"counter_resets": [[5.0, 2.0]], "counter_offset": 1024}
        )
        assert faults.counter_resets[0] == Window(5.0, 2.0)
        assert faults.counter_offset == 1024
        with pytest.raises(ParameterError, match="counter_offset"):
            FeedFaults(counter_offset=-1)
        with pytest.raises(ParameterError, match="counter_offset"):
            FeedFaults(counter_offset=1.5)


class TestDefaultPlan:
    def test_covers_the_three_failure_classes(self):
        plan = default_chaos_plan(["a", "b", "c", "d"], period=2.0, seed=1)
        assert plan.seed == 1
        assert plan.links["a"].outages and not plan.links["a"].corrupt
        assert plan.links["b"].corrupt.mode == "nan"
        assert plan.links["c"].drop_probability == pytest.approx(0.3)
        assert plan.links["c"].latency == pytest.approx(2.0)
        assert plan.links["c"].stuck
        assert "d" not in plan.links

    def test_single_link_merges_everything(self):
        plan = default_chaos_plan(["solo"], period=1.0)
        faults = plan.links["solo"]
        assert faults.outages and faults.corrupt and faults.stuck
        assert faults.drop_probability > 0.0
        assert not faults.counter_resets and faults.counter_offset == 0

    def test_counter_variant_adds_reset_and_wrap(self):
        plan = default_chaos_plan(["a", "b"], period=1.0, counters=True)
        assert plan.links["a"].counter_resets
        assert plan.links["b"].counter_offset > 0

    def test_validation(self):
        with pytest.raises(ParameterError):
            default_chaos_plan([], period=1.0)
        with pytest.raises(ParameterError):
            default_chaos_plan(["a"], period=0.0)
