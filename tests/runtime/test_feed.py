"""Tests for the measurement feeds."""

import math

import pytest

from repro.core.estimators import CrossSection
from repro.errors import ParameterError
from repro.runtime.feed import SourceFeed, TraceFeed
from repro.traffic.rcbr import paper_rcbr_source


def section(n=4, mean=1.0, var=0.09) -> CrossSection:
    m2 = mean * mean + var * (n - 1) / n if n else 0.0
    return CrossSection(n=n, mean=mean, second_moment=m2, variance=var)


class TestSourceFeed:
    def test_emits_once_per_period(self):
        feed = SourceFeed(paper_rcbr_source(), period=2.0, seed=1)
        assert feed.measure(0.0, 5) is not None
        assert feed.measure(1.0, 5) is None  # mid-epoch
        assert feed.measure(2.0, 5) is not None
        assert feed.last_measurement_time == 2.0

    def test_cross_section_matches_occupancy(self):
        feed = SourceFeed(paper_rcbr_source(), period=1.0, seed=2)
        out = feed.measure(0.0, 7)
        assert out.n == 7
        assert out.mean > 0.0
        assert out.variance >= 0.0

    def test_empty_link_measures_empty_section(self):
        feed = SourceFeed(paper_rcbr_source(), period=1.0, seed=3)
        out = feed.measure(0.0, 0)
        assert out.n == 0 and out.mean == 0.0

    def test_staleness_tracks_age(self):
        feed = SourceFeed(paper_rcbr_source(), period=1.0, seed=4)
        assert math.isinf(feed.staleness(10.0))
        feed.measure(0.0, 3)
        assert feed.staleness(2.5) == pytest.approx(2.5)
        feed.measure(3.0, 3)
        assert feed.staleness(3.0) == 0.0

    def test_pause_suppresses_and_ages(self):
        feed = SourceFeed(paper_rcbr_source(), period=1.0, seed=5)
        feed.measure(0.0, 3)
        feed.pause()
        assert feed.paused
        assert feed.measure(5.0, 3) is None
        assert feed.staleness(5.0) == pytest.approx(5.0)
        feed.resume()
        assert feed.measure(5.0, 3) is not None
        assert feed.staleness(5.0) == 0.0

    def test_validation(self):
        with pytest.raises(ParameterError):
            SourceFeed(paper_rcbr_source(), period=0.0)


class TestTraceFeed:
    def test_replays_in_order(self):
        sections = [section(mean=m) for m in (1.0, 2.0, 3.0)]
        feed = TraceFeed(sections, period=1.0)
        assert feed.measure(0.0, 9).mean == 1.0
        assert feed.measure(1.0, 9).mean == 2.0
        assert feed.measure(2.0, 9).mean == 3.0

    def test_exhaustion_goes_stale(self):
        feed = TraceFeed([section()], period=1.0)
        assert feed.measure(0.0, 1) is not None
        assert not feed.exhausted or feed.measure(1.0, 1) is None
        assert feed.measure(1.0, 1) is None
        assert feed.exhausted
        assert feed.staleness(4.0) == pytest.approx(4.0)

    def test_exhaustion_staleness_uses_recording_epoch(self):
        # Two sections at period 1.0, but the second is *delivered* late
        # (lazy polling at t=10).  Once exhausted, staleness must age from
        # the recording's own final epoch (t=1), not from the delivery
        # time -- otherwise delayed polls make stale data look fresh.
        feed = TraceFeed([section(mean=1.0), section(mean=2.0)], period=1.0)
        assert feed.measure(0.0, 1) is not None
        assert feed.measure(10.0, 1) is not None
        assert feed.exhausted
        assert feed.staleness(12.0) == pytest.approx(11.0)  # not 2.0
        # Before exhaustion the usual delivery-time staleness applies.
        fresh = TraceFeed([section(), section(), section()], period=1.0)
        fresh.measure(0.0, 1)
        assert not fresh.exhausted
        assert fresh.staleness(5.0) == pytest.approx(5.0)

    def test_exhaustion_staleness_on_time_delivery_unchanged(self):
        feed = TraceFeed([section(), section()], period=1.0)
        feed.measure(0.0, 1)
        feed.measure(1.0, 1)
        assert feed.exhausted
        # On-schedule delivery: epoch timeline and wall timeline agree.
        assert feed.staleness(4.0) == pytest.approx(3.0)

    def test_cycle_wraps_forever(self):
        feed = TraceFeed([section(mean=1.0), section(mean=2.0)], period=1.0,
                         cycle=True)
        means = [feed.measure(float(t), 1).mean for t in range(5)]
        assert means == [1.0, 2.0, 1.0, 2.0, 1.0]
        assert not feed.exhausted

    def test_accepts_rate_arrays(self):
        feed = TraceFeed([[1.0, 2.0, 3.0]], period=1.0)
        out = feed.measure(0.0, 3)
        assert out.n == 3
        assert out.mean == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ParameterError):
            TraceFeed([], period=1.0)
