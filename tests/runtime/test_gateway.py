"""Tests for the multi-link gateway and placement policies."""

import pytest

from repro.errors import ParameterError, RuntimeStateError
from repro.runtime.gateway import (
    AdmissionGateway,
    HashPlacement,
    LeastLoadedPlacement,
    RoundRobinPlacement,
    make_placement,
)
from repro.runtime.metrics import MetricsRegistry

from .conftest import make_link


def make_gateway(n_links=3, placement="least-loaded"):
    registry = MetricsRegistry()
    links = [
        make_link(f"l{i}", registry=registry) for i in range(n_links)
    ]
    return AdmissionGateway(links, placement=placement, registry=registry)


class TestPlacementPolicies:
    def test_round_robin_cycles(self):
        gateway = make_gateway(placement="round-robin")
        decided = [gateway.admit(i, 1e-3 * (i + 1)).link for i in range(6)]
        assert decided == ["l0", "l1", "l2", "l0", "l1", "l2"]

    def test_hash_is_sticky_and_seed_independent(self):
        policy = HashPlacement()
        gateway = make_gateway(placement="hash")
        first = policy.choose(gateway.links, "flow-42").name
        assert all(
            policy.choose(gateway.links, "flow-42").name == first
            for _ in range(5)
        )

    def test_least_loaded_picks_emptiest(self):
        gateway = make_gateway(placement="least-loaded")
        # Load l0 and l1 by hand, leaving l2 empty.
        gateway.link("l0").admit(1e-3)
        gateway.link("l1").admit(2e-3)
        decision = gateway.admit("new", 3e-3)
        assert decision.link == "l2"

    def test_make_placement(self):
        assert isinstance(make_placement("round-robin"), RoundRobinPlacement)
        policy = LeastLoadedPlacement()
        assert make_placement(policy) is policy
        with pytest.raises(ParameterError):
            make_placement("nope")


class TestGateway:
    def test_tracks_flow_assignments(self):
        gateway = make_gateway()
        gateway.admit("a", 1e-3)
        link = gateway.link_of("a")
        assert link is not None
        assert gateway.n_flows == 1
        departed = gateway.depart("a", 2e-3)
        assert departed is link
        assert gateway.n_flows == 0
        assert gateway.link_of("a") is None

    def test_duplicate_admit_raises(self):
        gateway = make_gateway()
        gateway.admit("a", 1e-3)
        with pytest.raises(RuntimeStateError):
            gateway.admit("a", 2e-3)

    def test_depart_unknown_flow_raises(self):
        gateway = make_gateway()
        with pytest.raises(RuntimeStateError):
            gateway.depart("ghost", 1.0)

    def test_rejected_flow_is_not_tracked(self):
        gateway = make_gateway(n_links=1)
        accepted = 0
        for i in range(30):
            if gateway.admit(i, 1e-3 * (i + 1)).admitted:
                accepted += 1
        assert gateway.n_flows == accepted == 17
        snap = gateway.registry.snapshot()
        assert snap["counters"]["gateway.admits"] == 17.0
        assert snap["counters"]["gateway.rejects"] == 13.0

    def test_tick_polls_every_link(self):
        gateway = make_gateway()
        assert gateway.tick(0.0) == 3  # all cyclic feeds emit at t=0
        assert gateway.tick(0.5) == 0  # mid-epoch
        assert gateway.tick(1.0) == 3

    def test_snapshot_includes_per_link_summaries(self):
        gateway = make_gateway()
        gateway.tick(0.0)
        snap = gateway.snapshot()
        assert set(snap["links"]) == {"l0", "l1", "l2"}
        for info in snap["links"].values():
            assert {"n_flows", "degraded", "mean_utilization",
                    "overflow_fraction", "load_fraction"} <= set(info)

    def test_link_lookup(self):
        gateway = make_gateway()
        assert gateway.link("l1").name == "l1"
        with pytest.raises(ParameterError):
            gateway.link("missing")

    def test_validation(self):
        with pytest.raises(ParameterError):
            AdmissionGateway([])
        registry = MetricsRegistry()
        with pytest.raises(ParameterError):
            AdmissionGateway(
                [make_link("dup", registry=registry),
                 make_link("dup", registry=MetricsRegistry())]
            )
