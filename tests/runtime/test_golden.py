"""Golden-trace regression: the canonical replay's decisions are pinned.

A small seeded replay (two links, cycling trace feeds, one measurement
outage, ~200 decisions) is committed under ``tests/runtime/data/`` as a
deterministic trace JSONL plus its sha256 decision digest.  The test
re-runs the replay and asserts byte-identical output, so any refactor
that silently changes admission behavior -- decision order, targets,
occupancy accounting, trace schema -- fails loudly here.

The golden gateway is built only from closed-form pieces (explicit-alpha
controllers, memoryless estimators, hand-written cross-sections) so the
trace does not depend on scipy/numpy special-function versions; the only
randomness is numpy's seeded Generator driving arrival times, whose
bit-stream is stable by contract.

Regenerate after an *intentional* behavior change with::

    PYTHONPATH=src python tests/runtime/test_golden.py --regen
"""

import json
import sys
from pathlib import Path

from repro.core.controllers import CertaintyEquivalentController
from repro.core.estimators import CrossSection, MemorylessEstimator
from repro.runtime.feed import TraceFeed
from repro.runtime.gateway import AdmissionGateway
from repro.runtime.link import ManagedLink
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.observability import DecisionTracer
from repro.runtime.replay import FeedOutage, replay

DATA_DIR = Path(__file__).parent / "data"
TRACE_PATH = DATA_DIR / "golden_trace.jsonl"
META_PATH = DATA_DIR / "golden_meta.json"

#: Exact-moment cross-sections the feeds cycle through (n, mean, variance).
_SECTIONS = (
    (6, 1.00, 0.090),
    (7, 1.10, 0.121),
    (5, 0.90, 0.070),
    (8, 1.05, 0.100),
)

REPLAY_KWARGS = dict(
    n_events=520,
    arrival_rate=2.0,
    holding_time=25.0,
    tick_period=1.0,
    seed=42,
    outages=(FeedOutage(link="g0", start=30.0, duration=12.0),),
    collect_digest=True,
)


def _sections():
    out = []
    for n, mean, var in _SECTIONS:
        m2 = mean * mean + var * (n - 1) / n
        out.append(CrossSection(n=n, mean=mean, second_moment=m2, variance=var))
    return out


def build_golden_gateway(tracer):
    """Two closed-form links behind round-robin placement."""
    registry = MetricsRegistry()
    links = []
    for name in ("g0", "g1"):
        links.append(
            ManagedLink(
                name,
                capacity=20.0,
                holding_time=100.0,
                mean_rate=1.0,
                feed=TraceFeed(_sections(), period=1.0, cycle=True),
                estimator=MemorylessEstimator(),
                controller=CertaintyEquivalentController(20.0, alpha=1.645),
                conservative_controller=CertaintyEquivalentController(
                    20.0, alpha=3.0
                ),
                stale_horizon=5.0,
                registry=registry,
                tracer=tracer,
            )
        )
    return AdmissionGateway(
        links, placement="round-robin", registry=registry
    )


def run_golden():
    """One golden replay; returns (tracer, report, deterministic lines)."""
    tracer = DecisionTracer()
    gateway = build_golden_gateway(tracer)
    report = replay(gateway, **REPLAY_KWARGS)
    lines = list(tracer.event_lines(deterministic=True))
    return tracer, report, lines


class TestGoldenTrace:
    def test_two_runs_are_byte_identical(self):
        tracer_a, report_a, lines_a = run_golden()
        tracer_b, report_b, lines_b = run_golden()
        assert lines_a == lines_b
        assert tracer_a.digest() == tracer_b.digest()
        assert report_a.decision_digest == report_b.decision_digest

    def test_tracer_digest_matches_replay_digest(self):
        tracer, report, _ = run_golden()
        assert tracer.digest() == report.decision_digest

    def test_matches_committed_golden(self):
        meta = json.loads(META_PATH.read_text())
        tracer, report, lines = run_golden()
        assert report.decision_digest == meta["decision_digest"], (
            "admission behavior changed: decision digest diverged from the "
            "golden value; if intentional, regenerate with "
            "`python tests/runtime/test_golden.py --regen`"
        )
        assert tracer.counts == meta["event_counts"]
        assert tracer.decisions == meta["decisions"]
        committed = TRACE_PATH.read_text().splitlines()
        assert lines == committed, (
            "trace schema or event stream changed vs the committed golden "
            "JSONL; if intentional, regenerate the data files"
        )

    def test_golden_workload_is_interesting(self):
        # The golden run must exercise the paths it pins: both decisions
        # outcomes, the outage-driven health transition, and enough
        # decisions to be a meaningful regression net.
        tracer, report, _ = run_golden()
        assert report.admitted > 0 and report.rejected > 0
        assert tracer.decisions >= 200
        assert tracer.counts["health"] > 0


def regen():  # pragma: no cover - maintenance entry point
    DATA_DIR.mkdir(exist_ok=True)
    tracer, report, lines = run_golden()
    TRACE_PATH.write_text("\n".join(lines) + "\n")
    META_PATH.write_text(json.dumps(
        {
            "decision_digest": report.decision_digest,
            "decisions": tracer.decisions,
            "event_counts": tracer.counts,
            "replay": {k: v for k, v in REPLAY_KWARGS.items()
                       if k not in ("outages", "collect_digest")},
        },
        indent=2,
        sort_keys=True,
    ) + "\n")
    print(f"golden trace: {len(lines)} events, "
          f"{tracer.decisions} decisions -> {TRACE_PATH}")
    print(f"decision digest: {report.decision_digest}")


if __name__ == "__main__":  # pragma: no cover
    if "--regen" in sys.argv:
        regen()
    else:
        print(__doc__)
        sys.exit(2)
