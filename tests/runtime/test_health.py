"""Tests for circuit breakers, link quarantine, and gateway failover."""

import logging
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError, RuntimeStateError, UnknownFlowError
from repro.runtime.faults import CorruptSpec, FaultyFeed, FeedFaults, Window
from repro.runtime.feed import TraceFeed
from repro.runtime.gateway import AdmissionGateway
from repro.runtime.health import (
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
    LinkHealth,
    section_problem,
)
from repro.runtime.metrics import MetricsRegistry

from .conftest import STALE_HORIZON, make_link, make_section


class TestSectionProblem:
    def test_valid_section_passes(self):
        assert section_problem(make_section()) is None

    def test_bad_sections_named(self):
        bad = [
            (make_section(n=-1), "negative flow count"),
            (make_section(mean=math.nan), "non-finite mean"),
            (make_section(mean=-2.0), "negative mean"),
        ]
        for section, fragment in bad:
            assert fragment in section_problem(section)

    def test_negative_variance_flagged(self):
        from repro.core.estimators import CrossSection

        section = CrossSection(n=3, mean=1.0, second_moment=1.0, variance=-0.1)
        assert "negative variance" in section_problem(section)


class TestBreakerConfig:
    def test_validation(self):
        with pytest.raises(ParameterError):
            BreakerConfig(failure_threshold=0)
        with pytest.raises(ParameterError):
            BreakerConfig(backoff_initial=0.0)
        with pytest.raises(ParameterError):
            BreakerConfig(backoff_factor=0.5)
        with pytest.raises(ParameterError):
            BreakerConfig(backoff_initial=10.0, backoff_cap=5.0)


class TestCircuitBreaker:
    def make(self, **kwargs):
        defaults = dict(failure_threshold=3, backoff_initial=1.0,
                        backoff_factor=2.0, backoff_cap=4.0)
        defaults.update(kwargs)
        return CircuitBreaker(BreakerConfig(**defaults))

    def test_opens_after_consecutive_failures(self):
        breaker = self.make()
        breaker.record_failure(0.0)
        breaker.record_failure(1.0)
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure(2.0)
        assert breaker.state is BreakerState.OPEN
        assert breaker.opened_at == 2.0

    def test_success_resets_failure_streak(self):
        breaker = self.make()
        breaker.record_failure(0.0)
        breaker.record_failure(0.1)
        breaker.record_success(0.2)
        breaker.record_failure(0.3)
        breaker.record_failure(0.4)
        assert breaker.state is BreakerState.CLOSED

    def test_backoff_gates_probes_then_half_opens(self):
        breaker = self.make()
        for t in (0.0, 0.1, 0.2):
            breaker.record_failure(t)
        assert not breaker.should_attempt(0.5)
        assert breaker.should_attempt(1.2)  # backoff 1.0 elapsed
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.should_attempt(1.3)  # half-open keeps allowing polls

    def test_failed_probe_doubles_backoff_up_to_cap(self):
        breaker = self.make()
        for t in (0.0, 0.1, 0.2):
            breaker.record_failure(t)
        expected = [2.0, 4.0, 4.0, 4.0]  # doubling, capped at 4
        t = 0.2
        for backoff in expected:
            t = breaker.next_probe_time + 1e-6
            assert breaker.should_attempt(t)
            breaker.record_failure(t)
            assert breaker.state is BreakerState.OPEN
            assert breaker.backoff == pytest.approx(backoff)

    def test_successful_probe_closes_and_resets_backoff(self):
        breaker = self.make()
        for t in (0.0, 0.1, 0.2):
            breaker.record_failure(t)
        assert breaker.should_attempt(2.0)
        breaker.record_success(2.0)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.backoff == pytest.approx(1.0)
        assert breaker.consecutive_failures == 0
        assert breaker.next_probe_time is None

    def test_trip_forces_open(self):
        breaker = self.make()
        breaker.trip(5.0)
        assert breaker.state is BreakerState.OPEN
        assert breaker.opened_at == 5.0

    def test_listener_sees_transitions(self):
        breaker = self.make(failure_threshold=1)
        events = []
        breaker.add_listener(lambda old, new, now: events.append((old, new, now)))
        breaker.record_failure(1.0)
        breaker.should_attempt(3.0)
        breaker.record_success(3.0)
        assert events == [
            (BreakerState.CLOSED, BreakerState.OPEN, 1.0),
            (BreakerState.OPEN, BreakerState.HALF_OPEN, 3.0),
            (BreakerState.HALF_OPEN, BreakerState.CLOSED, 3.0),
        ]

    def test_snapshot_shape(self):
        snap = self.make().snapshot()
        assert math.isnan(snap.pop("opened_at"))  # never opened yet
        assert snap == {
            "state": "closed",
            "consecutive_failures": 0,
            "backoff": 1.0,
            "next_probe_time": None,
        }

    def test_snapshot_reports_opened_at(self):
        breaker = self.make(failure_threshold=1)
        breaker.record_failure(5.0)
        assert breaker.snapshot()["opened_at"] == 5.0


def corrupt_link(name="sick", *, registry=None, probability=1.0,
                 windows=(), seed=0):
    """A cyclic link whose feed NaN-corrupts (optionally only in windows)."""
    link = make_link(name, registry=registry)
    link.feed = FaultyFeed(
        link.feed,
        FeedFaults(corrupt=CorruptSpec(
            mode="nan", probability=probability, windows=tuple(windows)
        )),
        seed=seed,
    )
    return link


class TestLinkQuarantine:
    def test_corrupt_burst_quarantines_then_probe_recovers(self):
        link = corrupt_link(windows=[Window(1.0, 3.0)])
        link.tick(0.0)  # clean measurement
        assert link.health is LinkHealth.HEALTHY
        for t in (1.0, 2.0, 3.0):  # three corrupt samples: breaker opens
            link.tick(t)
        assert link.quarantined
        assert link.breaker.state is BreakerState.OPEN
        decision = link.admit(3.5)
        assert not decision.admitted and decision.reason == "quarantined"
        # Past the backoff the probe finds clean data again (window over).
        link.tick(4.0 + link.breaker.backoff)
        assert link.breaker.state is BreakerState.CLOSED
        assert link.health is LinkHealth.HEALTHY
        assert link.admit(4.1 + link.breaker.backoff).admitted

    def test_invalid_samples_counted_and_estimate_unpoisoned(self):
        registry = MetricsRegistry()
        link = corrupt_link(registry=registry, windows=[Window(1.0, 2.0)])
        link.tick(0.0)
        link.tick(1.0)
        link.tick(2.0)
        counters = registry.snapshot()["counters"]
        assert counters["link.sick.invalid_samples"] == 2.0
        assert counters["link.sick.breaker_opens"] == 0.0  # threshold is 3
        # The memoryless estimate still holds the last *valid* section.
        estimate = link.estimator.estimate()
        assert math.isfinite(estimate.mu) and estimate.mu > 0.0

    def test_exhaustion_warns_once_and_trips_when_stale(self, caplog):
        link = make_link(cycle=False)
        with caplog.at_level(logging.WARNING, logger="repro.runtime.link"):
            link.tick(0.0)
            link.tick(1.0)  # exhausted now, but the estimate is still fresh
            assert link.health is LinkHealth.HEALTHY
            link.tick(2.0)
            link.tick(STALE_HORIZON + 1.0)
        exhaustion_logs = [
            rec for rec in caplog.records if "feed-exhausted" in rec.message
        ]
        assert len(exhaustion_logs) == 1
        assert "link=test" in exhaustion_logs[0].message
        assert link.quarantined  # stale + exhausted fails closed

    def test_quarantine_counted_once_per_episode(self):
        registry = MetricsRegistry()
        link = corrupt_link(registry=registry)  # every sample corrupt
        for t in range(5):
            link.tick(float(t))
        counters = registry.snapshot()["counters"]
        # One quarantine episode, even though the breaker re-opened after
        # its failed half-open probe (opens: t=2 threshold + t=3 probe).
        assert counters["link.sick.quarantines"] == 1.0
        assert counters["link.sick.breaker_opens"] == 2.0
        assert counters["link.sick.breaker_probes"] == 1.0


def two_link_gateway(registry=None, **sick_kwargs):
    """A gateway with one poisoned link ('sick') and one clean ('ok')."""
    registry = registry if registry is not None else MetricsRegistry()
    sick = corrupt_link(registry=registry, **sick_kwargs)
    ok = make_link("ok", registry=registry)
    gateway = AdmissionGateway(
        [sick, ok], placement="least-loaded", registry=registry
    )
    return gateway, registry


class TestGatewayFailover:
    def test_placement_skips_quarantined_links(self):
        gateway, _ = two_link_gateway()
        gateway.tick(0.0)
        for t in (1.0, 2.0, 3.0):
            gateway.tick(t)
        assert gateway.link("sick").quarantined
        for i in range(5):
            decision = gateway.admit(i, 3.1 + 1e-3 * i)
            assert decision.admitted and decision.link == "ok"

    def test_failover_when_link_quarantines_at_decision_time(self):
        # The sick link trips *inside* the admit tick: placement saw it as
        # eligible, the quarantine rejection must fail over to 'ok'.
        gateway, registry = two_link_gateway(windows=[Window(1.0, 10.0)])
        gateway.tick(0.0)  # clean measurements on both links
        # Least-loaded ties break on list order: 'a'/'c' land on sick.
        assert gateway.admit("a", 0.1).link == "sick"
        assert gateway.admit("b", 0.2).link == "ok"
        assert gateway.admit("c", 0.3).link == "sick"
        gateway.tick(1.0)
        gateway.tick(2.0)  # two corrupt samples seen; one more trips
        assert not gateway.link("sick").quarantined
        gateway.depart("a", 2.1)
        gateway.depart("c", 2.2)  # sick now least-loaded (0 vs 1 flows)
        decision = gateway.admit("d", 3.0)  # sick's tick ingests corrupt #3
        assert gateway.link("sick").quarantined
        assert decision.admitted and decision.link == "ok"
        counters = registry.snapshot()["counters"]
        assert counters["gateway.failovers"] >= 1.0

    def test_all_quarantined_fails_closed(self):
        registry = MetricsRegistry()
        links = [
            corrupt_link(f"s{i}", registry=registry, seed=i) for i in range(2)
        ]
        gateway = AdmissionGateway(links, registry=registry)
        for t in range(4):
            gateway.tick(float(t))
        assert all(link.quarantined for link in gateway.links)
        decision = gateway.admit("x", 4.5)
        assert not decision.admitted
        assert decision.reason == "quarantined"
        assert gateway.n_flows == 0

    def test_batched_failover_matches_flow_table(self):
        gateway, _ = two_link_gateway()
        for t in range(4):
            gateway.tick(float(t))
        assert gateway.link("sick").quarantined
        decisions = gateway.admit_many(list(range(30)), 4.5)
        admitted = [d for d in decisions if d.admitted]
        assert admitted and all(d.link == "ok" for d in admitted)
        assert not any(d.admitted for d in decisions if d.reason == "quarantined")
        assert gateway.n_flows == len(admitted)
        assert gateway.link("ok").n_flows == len(admitted)

    def test_snapshot_exposes_health_and_breaker(self):
        gateway, _ = two_link_gateway()
        for t in range(4):
            gateway.tick(float(t))
        snap = gateway.snapshot()
        assert snap["links"]["sick"]["health"] == "quarantined"
        assert snap["links"]["sick"]["breaker"]["state"] == "open"
        assert snap["links"]["ok"]["health"] == "healthy"
        assert snap["links"]["ok"]["breaker"]["consecutive_failures"] == 0


class TestUnknownFlows:
    def test_depart_unknown_flow_raises_typed_error(self):
        gateway, _ = two_link_gateway()
        with pytest.raises(UnknownFlowError) as excinfo:
            gateway.depart("ghost", 1.0)
        err = excinfo.value
        assert err.flow_ids == ("ghost",)
        assert set(err.links) == {"sick", "ok"}
        assert "ghost" in str(err) and "ok" in str(err)
        assert isinstance(err, RuntimeStateError)

    def test_depart_many_reports_every_unknown_id(self):
        gateway, _ = two_link_gateway()
        gateway.tick(0.0)
        assert gateway.admit("real", 0.1).admitted
        with pytest.raises(UnknownFlowError) as excinfo:
            gateway.depart_many(["real", "g1", "g2"], 0.2)
        assert excinfo.value.flow_ids == ("g1", "g2")
        # Validation happens before any mutation: 'real' is still active.
        assert gateway.n_flows == 1
        gateway.depart("real", 0.3)

    def test_depart_many_rejects_duplicates(self):
        gateway, _ = two_link_gateway()
        gateway.tick(0.0)
        assert gateway.admit("dup", 0.1).admitted
        with pytest.raises(RuntimeStateError, match="appears twice"):
            gateway.depart_many(["dup", "dup"], 0.2)
        assert gateway.n_flows == 1


# -- property: random fault schedules ----------------------------------------

fault_schedules = st.fixed_dictionaries(
    {
        "corrupt_start": st.floats(min_value=0.0, max_value=15.0),
        "corrupt_len": st.floats(min_value=1.0, max_value=20.0),
        "outage_start": st.floats(min_value=0.0, max_value=15.0),
        "outage_len": st.floats(min_value=1.0, max_value=20.0),
        "drop": st.floats(min_value=0.0, max_value=0.8),
        "seed": st.integers(min_value=0, max_value=2**16),
    }
)


@settings(max_examples=40, deadline=None)
@given(schedule=fault_schedules)
def test_random_faults_never_admit_quarantined_and_probe_within_cap(schedule):
    """Under any fault schedule: a quarantined link never admits, and the
    breaker's probe backoff never exceeds its configured cap."""
    link = make_link("fuzz")
    link.feed = FaultyFeed(
        link.feed,
        FeedFaults(
            outages=(Window(schedule["outage_start"], schedule["outage_len"]),),
            drop_probability=schedule["drop"],
            corrupt=CorruptSpec(
                mode="nan",
                probability=1.0,
                windows=(
                    Window(schedule["corrupt_start"], schedule["corrupt_len"]),
                ),
            ),
        ),
        seed=schedule["seed"],
    )
    cap = link.breaker.config.backoff_cap

    t = 0.0
    for step in range(80):
        t += 0.5
        decision = link.admit(t)
        if decision.health == "quarantined":
            assert not decision.admitted
        if decision.admitted:
            assert link.health is not LinkHealth.QUARANTINED
            if link.n_flows > 3:  # keep occupancy from saturating
                link.depart(t)
        # Bounded re-probe: however many probes have failed, the next one
        # is always due within the cap of the (re)open time.
        assert link.breaker.backoff <= cap + 1e-9
        if link.breaker.state is BreakerState.OPEN:
            assert link.breaker.next_probe_time <= link.breaker.opened_at + cap
            assert link.breaker.next_probe_time <= t + cap
