"""Tests for ManagedLink: admission, degradation, recovery, accounting."""

import math

import pytest

from repro.core.admission import admissible_flow_count, admissible_flow_count_alpha
from repro.errors import ParameterError, RuntimeStateError
from repro.runtime.feed import SourceFeed, TraceFeed
from repro.runtime.health import LinkHealth
from repro.runtime.link import ManagedLink
from repro.runtime.metrics import MetricsRegistry
from repro.traffic.rcbr import paper_rcbr_source

from .conftest import (
    ALPHA_CONSERVATIVE,
    CAPACITY,
    P_PLAIN,
    STALE_HORIZON,
    make_link,
    make_section,
)

PLAIN_TARGET = admissible_flow_count(1.0, 0.3, CAPACITY, P_PLAIN)  # ~17.91
CONSERVATIVE_TARGET = admissible_flow_count_alpha(
    1.0, 0.3, CAPACITY, ALPHA_CONSERVATIVE
)  # ~16.36


def fill(link, start=0.0, step=1e-3, attempts=50):
    """Admit until the link refuses; returns accepted count and end time."""
    t = start
    accepted = 0
    for _ in range(attempts):
        t += step
        if link.admit(t).admitted:
            accepted += 1
        else:
            break
    return accepted, t


class TestHealthyAdmission:
    def test_fills_to_plain_target(self, link):
        accepted, _ = fill(link)
        assert accepted == math.floor(PLAIN_TARGET) == 17
        assert link.n_flows == 17

    def test_reject_reports_target(self, link):
        fill(link)
        decision = link.admit(0.1)
        assert not decision.admitted
        assert decision.reason == "target"
        assert decision.target == pytest.approx(PLAIN_TARGET, rel=1e-6)
        assert not decision.degraded

    def test_departure_frees_capacity(self, link):
        fill(link)
        link.depart(0.2)
        assert link.n_flows == 16
        assert link.admit(0.3).admitted

    def test_depart_from_empty_raises(self, link):
        with pytest.raises(RuntimeStateError):
            link.depart(0.0)

    def test_clock_cannot_run_backwards(self, link):
        link.tick(5.0)
        with pytest.raises(RuntimeStateError):
            link.tick(1.0)

    def test_bootstrap_on_measured_empty_system(self):
        # First recorded measurement reports an empty system (mu = 0); a
        # healthy empty link must still accept its first flow.
        link = make_link(
            sections=[make_section(n=0, mean=0.0, var=0.0), make_section()],
            cycle=False,
        )
        first = link.admit(0.0)
        assert first.admitted and first.reason == "bootstrap"
        # Until a non-empty measurement arrives the zero estimate blocks.
        assert not link.admit(0.5).admitted
        # Next epoch measures the real section and admission resumes.
        assert link.admit(1.0).admitted


class TestDegradation:
    def test_silent_feed_degrades_past_horizon(self):
        link = make_link()  # cyclic feed, paused after one measurement
        link.tick(0.0)
        link.feed.pause()
        assert not link.degraded
        link.tick(STALE_HORIZON + 0.5)
        assert link.degraded
        assert link.health is LinkHealth.DEGRADED
        assert not link.quarantined  # silence degrades, it does not trip

    def test_exhausted_feed_quarantines_past_horizon(self):
        # An exhausted feed can never refresh its estimate: past the
        # horizon the link trips its breaker and fails closed instead of
        # admitting forever on a stale estimate.
        link = make_link(cycle=False)  # single section, then exhaustion
        link.tick(0.0)
        assert not link.degraded
        link.tick(STALE_HORIZON + 0.5)
        assert link.quarantined
        decision = link.admit(STALE_HORIZON + 0.6)
        assert not decision.admitted
        assert decision.reason == "quarantined"
        assert decision.health == "quarantined"
        assert math.isnan(decision.target)

    def test_degraded_admission_uses_conservative_target(self):
        link = make_link()
        accepted, t = fill(link)  # healthy fill to 17
        assert accepted == 17
        link.feed.pause()
        decision = link.admit(t + STALE_HORIZON + 1.0)
        assert decision.degraded
        assert decision.reason == "conservative-target"
        assert decision.target == pytest.approx(CONSERVATIVE_TARGET, rel=1e-6)
        assert not decision.admitted  # 17 >= floor(16.36)

    def test_degraded_admits_below_conservative_target(self):
        link = make_link()
        link.tick(0.0)  # ingest one measurement
        link.feed.pause()
        now = STALE_HORIZON + 1.0
        accepted = sum(
            link.admit(now + 1e-3 * i).admitted for i in range(40)
        )
        assert accepted == math.floor(CONSERVATIVE_TARGET) == 16

    def test_recovers_when_measurements_resume(self):
        link = make_link()  # cyclic feed
        link.tick(0.0)
        link.feed.pause()
        link.tick(STALE_HORIZON + 1.0)
        assert link.degraded
        registry_count = link.registry.snapshot()["counters"]
        assert registry_count["link.test.degradations"] == 1.0
        link.feed.resume()
        link.tick(STALE_HORIZON + 2.0)
        assert not link.degraded
        decision = link.admit(STALE_HORIZON + 2.1)
        assert decision.admitted and decision.reason == "target"

    def test_never_measured_link_rejects(self):
        link = make_link()
        link.feed.pause()  # nothing ever emitted
        decision = link.admit(0.5)
        assert not decision.admitted
        assert decision.reason == "no-measurement"
        assert decision.degraded
        assert math.isnan(decision.target)

    def test_targets_ordered(self, link):
        link.tick(0.0)
        assert link.conservative_target() < link.plain_target()


class TestAccounting:
    def test_utilization_and_overflow_fractions(self):
        # Aggregate 30 > capacity 20: permanently overloaded measurements.
        link = make_link(sections=[make_section(n=30, mean=1.0)], cycle=True)
        link.tick(0.0)
        link.tick(10.0)
        assert link.observed_time == pytest.approx(10.0)
        assert link.mean_utilization == pytest.approx(30.0 / CAPACITY)
        assert link.overflow_fraction == pytest.approx(1.0)

    def test_metrics_recorded(self, link):
        registry = link.registry
        fill(link)  # 17 admits + the terminating reject = 18 decisions
        link.depart(0.3)
        snap = registry.snapshot()
        assert snap["counters"]["link.test.admits"] == 17.0
        assert snap["counters"]["link.test.rejects"] == 1.0
        assert snap["counters"]["link.test.departures"] == 1.0
        assert snap["gauges"]["link.test.n_flows"] == 16.0
        assert snap["gauges"]["link.test.mu_hat"] == pytest.approx(1.0)
        assert snap["histograms"]["link.test.decision_latency"]["count"] == 18

    def test_load_fraction(self, link):
        fill(link)
        assert link.load_fraction == pytest.approx(17.0 / CAPACITY)


class TestBuild:
    def test_build_from_design_parameters(self):
        source = paper_rcbr_source()
        feed = SourceFeed(source, period=1.0, seed=0)
        link = ManagedLink.build(
            "built",
            capacity=100.0,
            holding_time=500.0,
            feed=feed,
            p_q=1e-2,
            snr=0.3,
            correlation_time=1.0,
        )
        t_h_tilde = 500.0 / math.sqrt(100.0 / source.mean)
        assert link.holding_time_scaled == pytest.approx(t_h_tilde)
        assert link.stale_horizon == pytest.approx(t_h_tilde)
        # The degraded-mode target must be strictly more conservative.
        assert link.conservative_controller.p_ce < link.controller.p_ce

    def test_build_requires_mean_rate_for_trace_feeds(self):
        feed = TraceFeed([make_section()], period=1.0)
        with pytest.raises(ParameterError):
            ManagedLink.build(
                "t", capacity=10.0, holding_time=10.0, feed=feed,
                p_q=1e-2, snr=0.3, correlation_time=1.0,
            )

    def test_build_shares_registry(self):
        registry = MetricsRegistry()
        feed = SourceFeed(paper_rcbr_source(), period=1.0)
        link = ManagedLink.build(
            "shared", capacity=50.0, holding_time=100.0, feed=feed,
            p_q=1e-2, snr=0.3, correlation_time=1.0, registry=registry,
        )
        assert link.registry is registry
        assert "link.shared.admits" in registry.names()

    def test_validation(self):
        feed = TraceFeed([make_section()], period=1.0)
        with pytest.raises(ParameterError):
            make_link(stale_horizon=0.0)
        with pytest.raises(ParameterError):
            ManagedLink.build(
                "bad", capacity=10.0, holding_time=10.0, feed=feed,
                p_q=1e-2, snr=0.3, correlation_time=1.0, mean_rate=1.0,
                stale_fraction=-1.0,
            )

    def test_build_memory_zero_is_memoryless_everywhere(self):
        """Regression: memory=0 used to silently alias the default
        (paper-rule) memory for the estimator while the degraded-mode
        inversion saw T_m=0; both halves must agree on memoryless."""
        from repro.core.estimators import MemorylessEstimator

        link = ManagedLink.build(
            "memzero",
            capacity=50.0,
            holding_time=100.0,
            feed=SourceFeed(paper_rcbr_source(), period=1.0, seed=0),
            p_q=1e-2,
            snr=0.3,
            correlation_time=1.0,
            memory=0.0,
        )
        assert isinstance(link.estimator, MemorylessEstimator)
        # Degraded mode still ends up strictly more conservative.
        assert (link.conservative_controller.criterion.alpha
                > link.controller.criterion.alpha)

    def test_build_rejects_negative_memory(self):
        with pytest.raises(ParameterError, match="memory"):
            ManagedLink.build(
                "memneg",
                capacity=50.0,
                holding_time=100.0,
                feed=SourceFeed(paper_rcbr_source(), period=1.0, seed=0),
                p_q=1e-2,
                snr=0.3,
                correlation_time=1.0,
                memory=-1.0,
            )
