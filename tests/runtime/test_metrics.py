"""Tests for the runtime metrics registry."""

import json
import math
from bisect import bisect_left

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.runtime.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("c")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ParameterError):
            Counter("c").inc(-1.0)


class TestGauge:
    def test_last_write_wins(self):
        gauge = Gauge("g")
        assert math.isnan(gauge.value)
        gauge.set(4.0)
        gauge.set(-2.0)
        assert gauge.value == -2.0


class TestHistogram:
    def test_summary_statistics(self):
        histogram = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 8.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(13.0)
        assert histogram.mean == pytest.approx(3.25)
        assert histogram.min == 0.5
        assert histogram.max == 8.0

    def test_quantiles_bounded_by_observations(self):
        histogram = Histogram("h", buckets=(0.001, 0.01, 0.1, 1.0))
        for value in (0.002, 0.003, 0.02, 0.05, 0.3):
            histogram.observe(value)
        for q in (0.0, 0.25, 0.5, 0.9, 1.0):
            estimate = histogram.quantile(q)
            assert 0.002 <= estimate <= 0.3

    def test_quantile_monotone_in_q(self):
        histogram = Histogram("h", buckets=(1.0, 2.0, 4.0, 8.0))
        for value in (0.5, 1.5, 2.5, 3.0, 5.0, 7.0, 9.0):
            histogram.observe(value)
        values = [histogram.quantile(q) for q in (0.1, 0.3, 0.5, 0.7, 0.9)]
        assert values == sorted(values)

    def test_empty_histogram_is_nan(self):
        histogram = Histogram("h", buckets=(1.0,))
        assert math.isnan(histogram.mean)
        assert math.isnan(histogram.quantile(0.5))

    def test_validation(self):
        with pytest.raises(ParameterError):
            Histogram("h", buckets=())
        with pytest.raises(ParameterError):
            Histogram("h", buckets=(2.0, 1.0))
        with pytest.raises(ParameterError):
            Histogram("h", buckets=(1.0,)).quantile(1.5)


class TestHistogramBoundaries:
    """The audited quantile() contract (see Histogram.quantile docstring)."""

    def test_rejects_non_finite_observations(self):
        histogram = Histogram("h", buckets=(1.0,))
        for bad in (math.nan, math.inf, -math.inf):
            with pytest.raises(ParameterError):
                histogram.observe(bad)
        assert histogram.count == 0  # refused at the door, state untouched

    def test_extreme_quantiles_are_exact(self):
        histogram = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.25, 1.5, 3.75, 9.0):
            histogram.observe(value)
        assert histogram.quantile(0.0) == 0.25
        assert histogram.quantile(1.0) == 9.0

    def test_observation_on_bucket_bound_is_upper_inclusive(self):
        histogram = Histogram("h", buckets=(1.0, 2.0))
        histogram.observe(1.0)  # exactly on the first bound
        # The single sample owns bucket 0, so every quantile returns it.
        for q in (0.0, 0.5, 1.0):
            assert histogram.quantile(q) == 1.0

    def test_single_bucket_histogram(self):
        histogram = Histogram("h", buckets=(10.0,))
        for value in (2.0, 4.0, 6.0):
            histogram.observe(value)
        assert histogram.quantile(0.0) == 2.0
        assert histogram.quantile(1.0) == 6.0
        assert 2.0 <= histogram.quantile(0.5) <= 6.0

    def test_all_samples_in_overflow_bucket(self):
        histogram = Histogram("h", buckets=(1.0,))
        for value in (5.0, 7.0, 11.0):
            histogram.observe(value)
        for q in (0.0, 0.5, 1.0):
            assert 5.0 <= histogram.quantile(q) <= 11.0

    @settings(max_examples=300, deadline=None)
    @given(
        samples=st.lists(
            st.floats(min_value=0.0, max_value=40.0,
                      allow_nan=False, allow_infinity=False),
            min_size=1,
            max_size=50,
        ),
        q=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_quantile_within_one_bucket_of_exact(self, samples, q):
        """Estimate is in [min, max] and within one clamped bucket width
        of the inverted-CDF sample quantile x_(max(1, ceil(q*count)))."""
        bounds = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0)
        histogram = Histogram("h", buckets=bounds)
        for value in samples:
            histogram.observe(value)

        estimate = histogram.quantile(q)
        ordered = sorted(samples)
        rank = max(1, math.ceil(q * len(ordered)))
        exact = ordered[rank - 1]

        assert min(samples) <= estimate <= max(samples)

        index = bisect_left(bounds, exact)  # bucket owning the exact quantile
        lo = bounds[index - 1] if index > 0 else min(samples)
        hi = bounds[index] if index < len(bounds) else max(samples)
        width = max(0.0, min(hi, max(samples)) - max(lo, min(samples)))
        assert abs(estimate - exact) <= width + 1e-12


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("x.admits")
        b = registry.counter("x.admits")
        assert a is b
        a.inc()
        assert registry.counter("x.admits").value == 1.0

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("name")
        with pytest.raises(ParameterError):
            registry.gauge("name")

    def test_snapshot_groups_by_type(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(2)
        registry.gauge("b").set(0.5)
        registry.histogram("c", buckets=(1.0,)).observe(0.1)
        snap = registry.snapshot()
        assert snap["counters"] == {"a": 2.0}
        assert snap["gauges"] == {"b": 0.5}
        assert snap["histograms"]["c"]["count"] == 1

    def test_snapshot_is_decoupled_from_live_instruments(self):
        registry = MetricsRegistry()
        counter = registry.counter("a")
        snap = registry.snapshot()
        counter.inc()
        assert snap["counters"]["a"] == 0.0

    def test_json_roundtrip_nan_safe(self):
        registry = MetricsRegistry()
        registry.gauge("unset")  # NaN
        registry.counter("hits").inc()
        payload = json.loads(registry.to_json())
        assert payload["gauges"]["unset"] is None
        assert payload["counters"]["hits"] == 1.0

    def test_names_and_get(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.gauge("a")
        assert registry.names() == ["a", "b"]
        assert isinstance(registry.get("a"), Gauge)
        with pytest.raises(KeyError):
            registry.get("missing")


class TestCumulativeBuckets:
    """The exporter-facing cumulative view (Prometheus histogram shape)."""

    def test_counts_are_cumulative_with_inf_terminal(self):
        histogram = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 8.0, 9.0):
            histogram.observe(value)
        assert histogram.cumulative_buckets() == [
            (1.0, 1), (2.0, 2), (4.0, 3), (math.inf, 5),
        ]

    def test_empty_histogram_is_well_defined(self):
        # The exporter edge case: a never-observed histogram must render
        # all-zero series, not divide by zero or drop the metric.
        histogram = Histogram("h", buckets=(1.0, 2.0))
        assert histogram.cumulative_buckets() == [
            (1.0, 0), (2.0, 0), (math.inf, 0),
        ]
        assert histogram.sum == 0.0
        assert math.isnan(histogram.quantile(0.5))
        summary = histogram.summary()
        assert summary["count"] == 0
        assert all(
            math.isnan(summary[k]) for k in ("min", "max", "mean", "p50")
        )

    def test_bound_inclusive_matches_observe(self):
        histogram = Histogram("h", buckets=(1.0, 2.0))
        histogram.observe(1.0)  # exactly on a bound: upper-inclusive
        assert histogram.cumulative_buckets()[0] == (1.0, 1)


class TestPrometheusExportEdgeCases:
    """Label escaping + empty-instrument rendering via the exporter."""

    def test_label_values_escaped_in_text_output(self):
        from repro.runtime.observability import (
            escape_label_value,
            render_prometheus,
        )

        assert escape_label_value('x"\\'+ "\n") == 'x\\"\\\\\\n'
        registry = MetricsRegistry()
        registry.counter('link.we"ird\\name.admits', "admits").inc(2)
        text = render_prometheus(registry)
        assert 'repro_link_admits{link="we\\"ird\\\\name"} 2' in text

    def test_never_observed_histogram_exports_zeros(self):
        from repro.runtime.observability import render_prometheus

        registry = MetricsRegistry()
        registry.histogram("latency", "help", buckets=(0.5, 1.0))
        text = render_prometheus(registry)
        assert 'repro_latency_bucket{le="0.5"} 0' in text
        assert 'repro_latency_bucket{le="+Inf"} 0' in text
        assert "repro_latency_sum 0" in text
        assert "repro_latency_count 0" in text

    def test_unset_gauge_exports_nan_not_crash(self):
        from repro.runtime.observability import render_prometheus

        registry = MetricsRegistry()
        registry.gauge("mu_hat", "estimate")
        assert "repro_mu_hat NaN" in render_prometheus(registry)
