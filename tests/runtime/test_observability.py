"""Tests for the observability layer: tracer, exporters, profiler."""

import io
import json
import math

import pytest

from repro.errors import ParameterError, RuntimeStateError
from repro.runtime.faults import CorruptSpec, FaultPlan, FeedFaults, Window
from repro.runtime.gateway import AdmissionGateway
from repro.runtime.metrics import Histogram, MetricsRegistry, json_safe
from repro.runtime.observability import (
    DecisionTracer,
    EVENT_KINDS,
    MetricsJsonlWriter,
    Profiler,
    TraceEvent,
    escape_label_value,
    render_prometheus,
)
from repro.runtime.replay import replay

from .conftest import make_link


def make_traced_gateway(n_links=2, tracer=None, profiler=None, **kwargs):
    registry = MetricsRegistry()
    links = [
        make_link(f"link{i}", registry=registry, **kwargs)
        for i in range(n_links)
    ]
    for link in links:
        link.tracer = tracer
        link.profiler = profiler
    return AdmissionGateway(
        links, placement="round-robin", registry=registry
    )


class TestTraceEvent:
    def test_to_dict_drops_unset_fields(self):
        event = TraceEvent(seq=0, t=1.0, kind="health", link="a",
                           health="degraded", detail="healthy->degraded")
        out = event.to_dict()
        assert out == {
            "seq": 0, "t": 1.0, "kind": "health", "link": "a",
            "health": "degraded", "detail": "healthy->degraded",
        }
        assert "mu_hat" not in out and "latency" not in out

    def test_deterministic_mode_omits_latency(self):
        event = TraceEvent(seq=3, t=2.0, kind="admit", link="a",
                           flow_id=7, reason="target", mu_hat=1.0,
                           sigma_hat=0.3, target=17.5, n_flows=4,
                           health="healthy", latency=1.25e-5)
        assert "latency" in event.to_dict()
        assert "latency" not in event.to_dict(deterministic=True)
        # JSON is stable-key-ordered and parseable.
        parsed = json.loads(event.to_json(deterministic=True))
        assert parsed["flow_id"] == 7
        assert parsed["target"] == 17.5


class TestDecisionTracer:
    def test_capacity_validation(self):
        with pytest.raises(ParameterError):
            DecisionTracer(capacity=0)

    def test_ring_bound_preserves_seq_and_counts(self):
        tracer = DecisionTracer(capacity=4)
        for i in range(10):
            tracer.record_fault("a", "dropped", float(i))
        assert len(tracer) == 4
        assert tracer.total_events == 10
        assert [e.seq for e in tracer.events] == [6, 7, 8, 9]
        assert tracer.counts["fault"] == 10

    def test_decisions_feed_digest_in_replay_format(self):
        import hashlib

        tracer = DecisionTracer()
        gateway = make_traced_gateway(tracer=tracer)
        gateway.tick(1.0)
        reference = hashlib.sha256()
        for i in range(5):
            decision = gateway.admit(i, 1.0)
            reference.update(
                f"{i}|{int(decision.admitted)}|{decision.reason}|"
                f"{decision.link}|{decision.n_flows}|{decision.target!r}\n"
                .encode("ascii")
            )
        assert tracer.decisions == 5
        assert tracer.digest() == reference.hexdigest()

    def test_decision_events_carry_estimator_state(self):
        tracer = DecisionTracer()
        gateway = make_traced_gateway(tracer=tracer)
        gateway.tick(1.0)
        gateway.admit("f", 1.0)
        (event,) = tracer.events
        assert event.kind == "admit"
        assert event.flow_id == "f"
        assert event.mu_hat == pytest.approx(1.0)
        assert event.sigma_hat == pytest.approx(math.sqrt(0.09))
        assert math.isfinite(event.target)
        assert event.latency is not None and event.latency >= 0.0

    def test_health_and_breaker_events(self):
        tracer = DecisionTracer()
        link = make_link(cycle=False)  # one section, then the feed exhausts
        link.tracer = tracer
        link.tick(0.0)
        link.tick(100.0)  # exhausted + stale -> breaker trips, quarantine
        kinds = [e.kind for e in tracer.events]
        assert "health" in kinds and "breaker" in kinds
        health = next(e for e in tracer.events if e.kind == "health")
        assert health.link == link.name
        assert health.detail == "healthy->quarantined"
        assert health.health == "quarantined"
        breaker = next(e for e in tracer.events if e.kind == "breaker")
        assert breaker.detail == "closed->open"

    def test_fault_events_via_fault_plan(self):
        tracer = DecisionTracer()
        gateway = make_traced_gateway(tracer=tracer)
        plan = FaultPlan(links={
            "link0": FeedFaults(
                corrupt=CorruptSpec(mode="nan", probability=1.0,
                                    windows=(Window(0.0, 100.0),))
            ),
        })
        plan.wrap(gateway)
        gateway.tick(1.0)
        faults = [e for e in tracer.events if e.kind == "fault"]
        assert faults and faults[0].link == "link0"
        assert faults[0].detail == "corrupted"

    def test_clear_resets_everything(self):
        tracer = DecisionTracer()
        tracer.record_fault("a", "stuck", 0.0)
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.total_events == 0
        assert tracer.counts == {kind: 0 for kind in EVENT_KINDS}

    def test_jsonl_export_roundtrip(self, tmp_path):
        tracer = DecisionTracer()
        gateway = make_traced_gateway(tracer=tracer)
        gateway.tick(1.0)
        for i in range(3):
            gateway.admit(i, 1.0)
        path = tmp_path / "trace.jsonl"
        assert tracer.to_jsonl(path) == 3
        lines = path.read_text().splitlines()
        assert len(lines) == 3
        assert [json.loads(line)["flow_id"] for line in lines] == [0, 1, 2]
        # Borrowed-handle variant writes the same lines.
        buffer = io.StringIO()
        tracer.to_jsonl(buffer, deterministic=True)
        for line in buffer.getvalue().splitlines():
            assert "latency" not in json.loads(line)

    def test_traced_replay_digest_matches_replay_digest(self):
        tracer = DecisionTracer()
        gateway = make_traced_gateway(tracer=tracer)
        report = replay(
            gateway,
            n_events=500,
            arrival_rate=1.0,
            holding_time=20.0,
            tick_period=1.0,
            seed=7,
            collect_digest=True,
        )
        assert report.decision_digest == tracer.digest()
        assert tracer.decisions == report.admitted + report.rejected


class TestPrometheusRendering:
    def test_escape_label_value(self):
        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'
        assert escape_label_value("plain") == "plain"

    def test_link_metrics_get_link_label(self):
        registry = MetricsRegistry()
        registry.counter("link.up0.admits", "admits").inc(3)
        registry.counter("link.up1.admits", "admits").inc(4)
        text = render_prometheus(registry)
        assert '# TYPE repro_link_admits counter' in text
        assert 'repro_link_admits{link="up0"} 3' in text
        assert 'repro_link_admits{link="up1"} 4' in text
        # One shared HELP header for the grouped series.
        assert text.count("# HELP repro_link_admits") == 1

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter('link.evil"link\\.admits', "admits").inc()
        text = render_prometheus(registry)
        assert 'link="evil\\"link\\\\"' in text

    def test_gauge_and_nan_rendering(self):
        registry = MetricsRegistry()
        registry.gauge("gateway.active_flows", "flows")  # never set -> NaN
        text = render_prometheus(registry)
        assert "repro_gateway_active_flows NaN" in text

    def test_histogram_cumulative_shape(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", "help", buckets=(1.0, 2.0))
        histogram.observe(0.5)
        histogram.observe(1.5)
        histogram.observe(9.0)
        text = render_prometheus(registry)
        assert 'repro_h_bucket{le="1.0"} 1' in text
        assert 'repro_h_bucket{le="2.0"} 2' in text
        assert 'repro_h_bucket{le="+Inf"} 3' in text
        assert "repro_h_sum 11" in text
        assert "repro_h_count 3" in text

    def test_never_observed_histogram_renders_zeros(self):
        registry = MetricsRegistry()
        registry.histogram("empty", "help", buckets=(1.0,))
        text = render_prometheus(registry)
        assert 'repro_empty_bucket{le="1.0"} 0' in text
        assert 'repro_empty_bucket{le="+Inf"} 0' in text
        assert "repro_empty_sum 0" in text
        assert "repro_empty_count 0" in text

    def test_link_histogram_labels_merge_with_le(self):
        registry = MetricsRegistry()
        registry.histogram("link.a.latency", "h", buckets=(1.0,)).observe(0.5)
        text = render_prometheus(registry)
        assert 'repro_link_latency_bucket{link="a",le="1.0"} 1' in text

    def test_namespace_sanitized_and_required(self):
        registry = MetricsRegistry()
        registry.counter("c", "help").inc()
        assert "my_ns_c 1" in render_prometheus(registry, namespace="my.ns")

    def test_full_runtime_registry_renders(self):
        gateway = make_traced_gateway()
        gateway.tick(1.0)
        gateway.admit("x", 1.0)
        text = render_prometheus(gateway.registry)
        assert "# TYPE repro_gateway_admits counter" in text
        assert "# TYPE repro_gateway_decision_latency histogram" in text
        assert 'repro_link_failovers{link="link0"} 0' in text


class TestMetricsJsonlWriter:
    def test_interval_validation(self):
        with pytest.raises(ParameterError):
            MetricsJsonlWriter(MetricsRegistry(), io.StringIO(), interval=0.0)

    def test_poll_respects_interval(self):
        registry = MetricsRegistry()
        registry.counter("c", "help")
        buffer = io.StringIO()
        writer = MetricsJsonlWriter(registry, buffer, interval=10.0)
        assert writer.poll(0.0) is True      # first poll always writes
        assert writer.poll(5.0) is False     # within the interval
        assert writer.poll(10.0) is True
        assert writer.snapshots == 2
        lines = [json.loads(line) for line in buffer.getvalue().splitlines()]
        assert [line["t"] for line in lines] == [0.0, 10.0]
        assert lines[0]["counters"]["c"] == 0.0

    def test_nan_serializes_as_null(self):
        registry = MetricsRegistry()
        registry.gauge("g", "help")  # NaN until set
        buffer = io.StringIO()
        MetricsJsonlWriter(registry, buffer, interval=1.0).write(0.0)
        assert json.loads(buffer.getvalue())["gauges"]["g"] is None

    def test_owns_path_and_closes(self, tmp_path):
        registry = MetricsRegistry()
        path = tmp_path / "metrics.jsonl"
        with MetricsJsonlWriter(registry, path, interval=1.0) as writer:
            writer.write(0.0)
        assert len(path.read_text().splitlines()) == 1

    def test_replay_polls_on_ticks(self):
        gateway = make_traced_gateway()
        buffer = io.StringIO()
        writer = MetricsJsonlWriter(gateway.registry, buffer, interval=5.0)
        replay(
            gateway,
            n_events=300,
            arrival_rate=1.0,
            holding_time=20.0,
            tick_period=1.0,
            seed=0,
            metrics_writer=writer,
        )
        lines = buffer.getvalue().splitlines()
        assert writer.snapshots == len(lines) >= 2
        times = [json.loads(line)["t"] for line in lines]
        assert times == sorted(times)
        # replay() closes the writer, flushing the final partial interval.
        assert writer.closed

    def test_close_flushes_the_final_partial_interval(self):
        registry = MetricsRegistry()
        counter = registry.counter("c", "help")
        buffer = io.StringIO()
        writer = MetricsJsonlWriter(registry, buffer, interval=10.0)
        writer.poll(0.0)          # periodic snapshot
        counter.inc(7.0)
        assert writer.poll(4.0) is False  # mid-interval: nothing written yet
        writer.close()            # ...but close() must not lose the 7
        lines = [json.loads(line) for line in buffer.getvalue().splitlines()]
        assert [line["t"] for line in lines] == [0.0, 4.0]
        assert lines[-1]["counters"]["c"] == 7.0
        assert writer.snapshots == 2

    def test_close_at_explicit_time(self):
        registry = MetricsRegistry()
        buffer = io.StringIO()
        writer = MetricsJsonlWriter(registry, buffer, interval=10.0)
        writer.poll(0.0)
        writer.close(3.5)
        times = [
            json.loads(line)["t"] for line in buffer.getvalue().splitlines()
        ]
        assert times == [0.0, 3.5]

    def test_close_skips_duplicate_final_snapshot(self):
        registry = MetricsRegistry()
        buffer = io.StringIO()
        writer = MetricsJsonlWriter(registry, buffer, interval=10.0)
        writer.poll(0.0)
        writer.close(0.0)  # the final clock was already snapshotted
        assert writer.snapshots == 1
        assert len(buffer.getvalue().splitlines()) == 1

    def test_close_is_idempotent_and_seals_the_writer(self):
        registry = MetricsRegistry()
        buffer = io.StringIO()
        writer = MetricsJsonlWriter(registry, buffer, interval=1.0)
        writer.poll(0.0)
        writer.close(2.0)
        writer.close(5.0)  # no-op: no third line
        assert writer.snapshots == 2
        assert writer.closed
        with pytest.raises(RuntimeStateError):
            writer.write(9.0)

    def test_close_without_any_poll_writes_nothing(self):
        registry = MetricsRegistry()
        buffer = io.StringIO()
        writer = MetricsJsonlWriter(registry, buffer, interval=1.0)
        writer.close()
        assert writer.snapshots == 0 and buffer.getvalue() == ""


class TestProfiler:
    def test_sites_registered_as_ns_histograms(self):
        profiler = Profiler()
        for site in Profiler.SITES:
            histogram = getattr(profiler, site)
            assert isinstance(histogram, Histogram)
            assert histogram.name == f"profile.{site}_ns"

    def test_hot_paths_observe_when_attached(self):
        profiler = Profiler()
        gateway = make_traced_gateway(profiler=profiler)
        gateway.profiler = profiler
        gateway.tick(1.0)
        gateway.admit("a", 1.0)
        gateway.admit_many(["b", "c"], 1.0)
        summary = profiler.summary()
        assert summary["admit"]["count"] == 1
        assert summary["admit_many"]["count"] >= 1
        assert summary["estimator_read"]["count"] >= 2
        assert summary["placement"]["count"] >= 2
        assert summary["admit"]["mean"] > 0.0

    def test_shared_registry_exposes_profile_series(self):
        registry = MetricsRegistry()
        profiler = Profiler(registry)
        profiler.admit.observe(123.0)
        assert "profile.admit_ns" in registry.names()
        assert "repro_profile_admit_ns_count 1" in render_prometheus(registry)

    def test_detached_profiler_means_no_observations(self):
        gateway = make_traced_gateway()  # no profiler anywhere
        gateway.tick(1.0)
        gateway.admit("a", 1.0)
        assert gateway.profiler is None
        assert all(link.profiler is None for link in gateway.links)


class TestJsonSafe:
    def test_recurses_and_nulls_non_finite(self):
        payload = {
            "a": math.nan,
            "b": [1.0, math.inf, {"c": -math.inf}],
            "d": ("x", 2),
        }
        assert json_safe(payload) == {
            "a": None, "b": [1.0, None, {"c": None}], "d": ["x", 2],
        }


class TestServeReplayCli:
    def test_observability_flags_write_artifacts(self, tmp_path, capsys):
        from repro.cli import main

        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.jsonl"
        prom = tmp_path / "metrics.prom"
        code = main([
            "serve-replay", "--events", "400", "--links", "2",
            "--holding-time", "50",
            "--trace-out", str(trace),
            "--metrics-out", str(metrics),
            "--prom-out", str(prom),
            "--profile",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "digest vs replay   : match" in out
        assert "profile (ns)" in out
        trace_lines = trace.read_text().splitlines()
        assert trace_lines and all(json.loads(line) for line in trace_lines)
        assert metrics.read_text().splitlines()
        assert "# TYPE repro_gateway_admits counter" in prom.read_text()

    def test_json_payload_includes_trace_and_profile(self, tmp_path, capsys):
        from repro.cli import main

        code = main([
            "serve-replay", "--events", "300", "--links", "2",
            "--holding-time", "50",
            "--trace-out", str(tmp_path / "t.jsonl"),
            "--profile", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["trace"]["events"] > 0
        assert len(payload["trace"]["decision_digest"]) == 64
        assert payload["profile"]["admit"]["count"] > 0
