"""Process-level fault kinds: parsed like any fault, rejected on feeds."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.runtime.faults import (
    FAULT_KINDS,
    FaultPlan,
    FaultyFeed,
    FeedFaults,
    Window,
)
from repro.runtime.feed import TraceFeed
from repro.core.estimators import CrossSection


def make_inner():
    section = CrossSection(n=4, mean=1.0, second_moment=1.1, variance=0.1)
    return TraceFeed([section], period=1.0, cycle=True)


class TestProcessFaultKinds:
    def test_listed_in_fault_kinds(self):
        assert "shard_crash" in FAULT_KINDS
        assert "shard_restart" in FAULT_KINDS

    def test_parsed_from_dict_and_direct_construction(self):
        faults = FeedFaults.from_dict(
            {"shard_crash": [[5.0, 1.0]], "shard_restart": [{"start": 9.0}]}
        )
        assert faults.shard_crash == (Window(5.0, 1.0),)
        assert faults.shard_restart[0].start == 9.0
        direct = FeedFaults(shard_crash=[[2.0, 3.0]])
        assert direct.shard_crash == (Window(2.0, 3.0),)

    def test_unknown_kind_still_names_the_valid_set(self):
        with pytest.raises(ParameterError, match="shard_crash"):
            FeedFaults.from_dict({"shard_crunch": [[0.0, 1.0]]})

    def test_plan_round_trips_process_faults(self):
        plan = FaultPlan.from_dict({
            "seed": 3,
            "links": {"s0": {"shard_crash": [[4.0, 1.0]]}},
        })
        assert plan.links["s0"].shard_crash == (Window(4.0, 1.0),)

    def test_faulty_feed_rejects_process_faults_with_typed_error(self):
        # A process fault on a feed target would silently no-op for the
        # whole run; it must be rejected at wrap time, pointing at the
        # supervisor that can actually execute it.
        for kind in ("shard_crash", "shard_restart"):
            faults = FeedFaults(**{kind: [[1.0, 1.0]]})
            with pytest.raises(ParameterError) as exc:
                FaultyFeed(make_inner(), faults, name="link0")
            message = str(exc.value)
            assert kind in message
            assert "process-level" in message
            assert "ProcessCluster" in message

    def test_feed_level_faults_still_wrap_fine(self):
        feed = FaultyFeed(
            make_inner(), FeedFaults(outages=[[0.0, 1.0]]), name="link0"
        )
        assert feed.injected["outage_polls"] == 0
