"""Property test for the runtime's degradation safety invariant.

The contract the stale-feed degradation exists to honour: once a gateway's
measurement plane goes silent for good, **no link ever admits above the
conservative adjusted-``p_ce`` target** -- whatever the arrival/departure
sequence does.  Flows admitted before the feed died may leave occupancy
above the conservative count; the invariant is about *new* admissions.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.admission import admissible_flow_count_alpha
from repro.runtime.gateway import AdmissionGateway
from repro.runtime.metrics import MetricsRegistry

from .conftest import ALPHA_CONSERVATIVE, CAPACITY, STALE_HORIZON, make_link

#: The degraded-mode admissible count for the frozen (memoryless) estimate
#: every link in this suite ends up holding: mu=1, sigma=0.3.
CONSERVATIVE_FLOOR = math.floor(
    admissible_flow_count_alpha(1.0, 0.3, CAPACITY, ALPHA_CONSERVATIVE)
)

steps = st.lists(
    st.tuples(
        st.floats(min_value=0.05, max_value=20.0),  # time increment
        st.booleans(),  # True -> try a departure first
    ),
    min_size=1,
    max_size=60,
)


@settings(max_examples=60, deadline=None)
@given(steps=steps, warm_arrivals=st.integers(min_value=0, max_value=40))
def test_stale_gateway_never_admits_above_conservative_target(
    steps, warm_arrivals
):
    registry = MetricsRegistry()
    links = [make_link(f"l{i}", registry=registry) for i in range(2)]
    gateway = AdmissionGateway(links, placement="least-loaded",
                               registry=registry)

    # Healthy phase: one recorded measurement arrives, then an arbitrary
    # number of flows race in while it is still fresh.
    gateway.tick(0.0)
    flow_id = 0
    active = []
    t = 0.0
    for _ in range(warm_arrivals):
        t += 1e-3
        if gateway.admit(flow_id, t).admitted:
            active.append(flow_id)
        flow_id += 1

    # The measurement plane goes silent for good (paused, not exhausted:
    # silence degrades, it does not trip the breakers): from here staleness
    # only grows.  Jump past the horizon and replay an arbitrary
    # arrival/departure schedule.
    for link in gateway.links:
        link.feed.pause()
    occupancy_at_stale = {link.name: link.n_flows for link in gateway.links}
    t = STALE_HORIZON + 1.0
    for dt, depart_first in steps:
        t += dt
        if depart_first and active:
            gateway.depart(active.pop(0), t)
        decision = gateway.admit(flow_id, t)
        flow_id += 1

        assert decision.degraded, "past the horizon every decision is degraded"
        if decision.admitted:
            active.append(flow_id - 1)
            assert decision.reason == "conservative-target"
            assert decision.n_flows <= CONSERVATIVE_FLOOR
        # Whether admitted or not, no link may ever be pushed above the
        # conservative count by a degraded-mode admission; occupancy above
        # it can only be a leftover from the healthy phase, draining down.
        for link in gateway.links:
            assert link.n_flows <= max(
                CONSERVATIVE_FLOOR, occupancy_at_stale[link.name]
            )

    # The degradation was observed and recorded at least once per used link.
    counters = registry.snapshot()["counters"]
    assert (
        counters["link.l0.degradations"] + counters["link.l1.degradations"] > 0
    )
