"""Tests for the replay workload driver."""

import pytest

from repro.errors import ParameterError
from repro.runtime.feed import SourceFeed
from repro.runtime.gateway import AdmissionGateway
from repro.runtime.link import ManagedLink
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.replay import FeedOutage, replay
from repro.traffic.rcbr import paper_rcbr_source


def make_gateway(n_links=2, n=30.0, holding_time=100.0, stale_fraction=1.0):
    registry = MetricsRegistry()
    links = []
    for i in range(n_links):
        source = paper_rcbr_source()
        feed = SourceFeed(source, period=1.0, seed=10 + i)
        links.append(
            ManagedLink.build(
                f"link{i}",
                capacity=n * source.mean,
                holding_time=holding_time,
                feed=feed,
                p_q=1e-2,
                snr=0.3,
                correlation_time=1.0,
                stale_fraction=stale_fraction,
                registry=registry,
            )
        )
    return AdmissionGateway(links, registry=registry)


class TestReplay:
    def test_event_accounting(self):
        gateway = make_gateway()
        report = replay(
            gateway,
            n_events=3000,
            arrival_rate=1.0,
            holding_time=100.0,
            tick_period=1.0,
            seed=4,
        )
        assert report.events == 3000
        assert report.events == report.arrivals + report.departures + report.ticks
        assert report.arrivals == report.admitted + report.rejected
        assert report.final_flows == report.admitted - report.departures
        assert report.final_flows == gateway.n_flows
        assert report.decisions_per_sec > 0.0
        assert report.simulated_time > 0.0

    def test_reproducible_workload(self):
        a = replay(make_gateway(), n_events=1500, arrival_rate=1.0,
                   holding_time=100.0, tick_period=1.0, seed=7)
        b = replay(make_gateway(), n_events=1500, arrival_rate=1.0,
                   holding_time=100.0, tick_period=1.0, seed=7)
        assert (a.admitted, a.rejected, a.departures) == (
            b.admitted, b.rejected, b.departures
        )

    def test_snapshot_covers_all_links(self):
        report = replay(make_gateway(), n_events=800, arrival_rate=1.0,
                        holding_time=100.0, tick_period=1.0, seed=0)
        assert set(report.metrics["links"]) == {"link0", "link1"}
        counters = report.metrics["counters"]
        total_admits = (
            counters["link.link0.admits"] + counters["link.link1.admits"]
        )
        assert total_admits == report.admitted

    def test_outage_triggers_degradation(self):
        # Small stale fraction so the outage comfortably exceeds the horizon.
        gateway = make_gateway(stale_fraction=0.2)
        horizon = gateway.link("link0").stale_horizon
        report = replay(
            gateway,
            n_events=6000,
            arrival_rate=1.0,
            holding_time=100.0,
            tick_period=1.0,
            seed=2,
            outages=[FeedOutage("link0", start=50.0, duration=4.0 * horizon)],
        )
        counters = report.metrics["counters"]
        assert counters["link.link0.degradations"] >= 1.0
        assert counters["link.link1.degradations"] == 0.0
        # The run outlives the outage, so the link must have recovered.
        assert not gateway.link("link0").degraded

    def test_validation(self):
        gateway = make_gateway()
        with pytest.raises(ParameterError):
            replay(gateway, n_events=0, arrival_rate=1.0, holding_time=1.0,
                   tick_period=1.0)
        with pytest.raises(ParameterError):
            replay(gateway, n_events=10, arrival_rate=0.0, holding_time=1.0,
                   tick_period=1.0)
        with pytest.raises(ParameterError):
            replay(gateway, n_events=10, arrival_rate=1.0, holding_time=1.0,
                   tick_period=1.0,
                   outages=[FeedOutage("missing", start=1.0, duration=1.0)])
        with pytest.raises(ParameterError):
            FeedOutage("link0", start=-1.0, duration=1.0)
