"""Autoscaler policy mechanics and live ring-resize reconciliation."""

from __future__ import annotations

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.scenario.autoscale import AutoscalePolicy, Autoscaler
from repro.service.cluster import HashRing
from repro.service.replication import GatewaySpec, ProcessCluster

KEYS = [f"flow-{i}" for i in range(400)]
SPEC = GatewaySpec(kind="trace", links=2, capacity=20.0)


def run(coro):
    return asyncio.run(coro)


class FakeCluster:
    """In-memory stand-in exposing the surface Autoscaler reads/drives."""

    def __init__(self, n_flows=0, shards=("s0",)):
        self.flows = {f"f{i}": "s0" for i in range(n_flows)}
        self.shards = {name: object() for name in shards}
        self.calls = []

    def set_load(self, n_flows):
        self.flows = {f"f{i}": "s0" for i in range(n_flows)}

    async def add_shard(self, name):
        self.shards[name] = object()
        self.calls.append(("add", name))
        return 3

    async def remove_shard(self, name):
        del self.shards[name]
        self.calls.append(("remove", name))
        return 2


class TestAutoscalePolicy:
    def test_validation(self):
        with pytest.raises(ParameterError):
            AutoscalePolicy(high_flows_per_shard=2.0, low_flows_per_shard=2.0)
        with pytest.raises(ParameterError):
            AutoscalePolicy(high_flows_per_shard=5.0, low_flows_per_shard=-1.0)
        with pytest.raises(ParameterError):
            AutoscalePolicy(5.0, 1.0, min_shards=0)
        with pytest.raises(ParameterError):
            AutoscalePolicy(5.0, 1.0, min_shards=3, max_shards=2)
        with pytest.raises(ParameterError):
            AutoscalePolicy(5.0, 1.0, cooldown=-0.1)


class TestAutoscalerUnit:
    def policy(self, **kwargs):
        defaults = dict(high_flows_per_shard=10.0, low_flows_per_shard=2.0,
                        min_shards=1, max_shards=4)
        defaults.update(kwargs)
        return AutoscalePolicy(**defaults)

    def test_hysteresis_band_is_quiet(self):
        async def scenario():
            cluster = FakeCluster(n_flows=5)  # 5/shard: inside (2, 10)
            scaler = Autoscaler(cluster, self.policy())
            assert await scaler.observe(0.0) is None
            assert cluster.calls == []

        run(scenario())

    def test_scales_up_at_high_mark_and_caps_at_max(self):
        async def scenario():
            cluster = FakeCluster(n_flows=10)
            scaler = Autoscaler(cluster, self.policy(max_shards=2))
            action = await scaler.observe(1.0)
            assert action == {"action": "add", "t": 1.0, "shard": "a1",
                              "migrated": 3, "flows_per_shard": 10.0}
            cluster.set_load(40)  # 20/shard, but max_shards reached
            assert await scaler.observe(2.0) is None
            assert scaler.scale_ups == 1
            assert [c[0] for c in cluster.calls] == ["add"]

        run(scenario())

    def test_removes_own_shards_lifo_and_never_base_shards(self):
        async def scenario():
            cluster = FakeCluster(n_flows=0, shards=("s0", "s1"))
            scaler = Autoscaler(cluster, self.policy(min_shards=1))
            # Below the low mark with nothing of its own: must not touch
            # the base shards.
            assert await scaler.observe(0.0) is None
            cluster.set_load(20)
            await scaler.observe(1.0)  # adds a1
            cluster.set_load(40)
            await scaler.observe(2.0)  # adds a2
            cluster.set_load(0)
            first = await scaler.observe(3.0)
            second = await scaler.observe(4.0)
            assert (first["shard"], second["shard"]) == ("a2", "a1")
            # Own stack drained; base shards stay put even below low.
            assert await scaler.observe(5.0) is None
            assert set(cluster.shards) == {"s0", "s1"}
            assert scaler.scale_downs == 2

        run(scenario())

    def test_min_shards_floor_blocks_removal(self):
        async def scenario():
            cluster = FakeCluster(n_flows=20, shards=("s0",))
            scaler = Autoscaler(cluster, self.policy(min_shards=2))
            await scaler.observe(0.0)  # adds a1 -> 2 shards
            cluster.set_load(0)
            assert await scaler.observe(1.0) is None  # floor is 2
            assert set(cluster.shards) == {"s0", "a1"}

        run(scenario())

    def test_cooldown_separates_actions_in_simulated_time(self):
        async def scenario():
            cluster = FakeCluster(n_flows=10)
            scaler = Autoscaler(cluster, self.policy(cooldown=10.0))
            assert (await scaler.observe(0.0))["action"] == "add"
            cluster.set_load(40)
            assert await scaler.observe(5.0) is None  # still cooling
            assert (await scaler.observe(10.0))["action"] == "add"
            assert scaler.scale_ups == 2

        run(scenario())


class TestAutoscaleRingTransitions:
    @settings(max_examples=25, deadline=None, derandomize=True)
    @given(
        n_base=st.integers(min_value=2, max_value=6),
        fresh=st.integers(min_value=0, max_value=10 ** 9),
    )
    def test_each_transition_remaps_about_one_over_n(self, n_base, fresh):
        """Every autoscale step pays only the consistent-hashing price:
        adding the (N+1)-th shard remaps ~1/(N+1) of keys (generously
        bounded), and the matching removal restores the mapping exactly
        -- so repeated up/down cycles cannot accumulate churn."""
        ring = HashRing([f"s{i}" for i in range(n_base)])
        for step in range(3):
            before = {key: ring.node_for(key) for key in KEYS}
            name = f"a{fresh}-{step}"
            ring.add(name)
            moved = sum(
                1 for key in KEYS if ring.node_for(key) != before[key]
            )
            assert moved <= len(KEYS) * min(1.0, 4.0 / (n_base + 1))
            ring.remove(name)
            assert {key: ring.node_for(key) for key in KEYS} == before


@pytest.mark.slow
class TestAutoscaleLive:
    def test_add_remove_add_under_load_reconciles_clean(self):
        """The satellite acceptance: an add -> remove -> add sequence on
        a live multi-process cluster, each step migrating flows that are
        mid-holding-time, ends with zero lost and zero double-admitted
        decisions."""

        async def scenario():
            async with ProcessCluster(SPEC, shards=2, replicas=0) as cluster:
                policy = AutoscalePolicy(
                    high_flows_per_shard=10.0, low_flows_per_shard=2.0,
                    min_shards=2, max_shards=4,
                )
                scaler = Autoscaler(cluster, policy)
                t = 0.0
                for i in range(40):
                    t += 0.02
                    await cluster.admit(f"f{i}", t)
                up1 = await scaler.observe(t)
                mid1 = await cluster.reconcile()
                for flow in list(cluster.flows)[:36]:
                    t += 0.01
                    await cluster.depart(flow, t)
                down = await scaler.observe(t)
                mid2 = await cluster.reconcile()
                for i in range(40, 80):
                    t += 0.02
                    await cluster.admit(f"f{i}", t)
                up2 = await scaler.observe(t)
                final = await cluster.reconcile()
                return up1, down, up2, mid1, mid2, final, scaler

        up1, down, up2, mid1, mid2, final, scaler = run(scenario())
        assert up1 and up1["action"] == "add" and up1["migrated"] > 0
        assert down and down["action"] == "remove" and down["shard"] == up1["shard"]
        assert up2 and up2["action"] == "add" and up2["shard"] != up1["shard"]
        assert scaler.scale_ups == 2 and scaler.scale_downs == 1
        for stage in (mid1, mid2, final):
            assert stage["ok"], stage
            assert stage["lost"] == [] and stage["double_admitted"] == []
