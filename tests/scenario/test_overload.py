"""Tests for the sustained multi-class overload scenario.

One default-config run (arrival rate ~3x nominal capacity against a
classed, alpha-adjusted gateway) is shared across the behavioural tests;
it must clear every Leskelä-style stability and per-class conformance
gate, reject heavily, and reproduce its digest byte-for-byte on rerun.
"""

import pytest

from repro.errors import MixWeightError, ParameterError
from repro.scenario.overload import OverloadConfig, run_overload


@pytest.fixture(scope="module")
def default_result():
    return run_overload(OverloadConfig())


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        dict(capacity=0.0),
        dict(holding_time=-1.0),
        dict(overload_factor=0.0),
        dict(warmup=0.0),
        dict(overload=0.0),
        dict(sustain=0.0),
        dict(links=0),
        dict(max_in_system_factor=1.0),
        dict(feed_period=0.0),
    ])
    def test_bad_parameters(self, kwargs):
        with pytest.raises(ParameterError):
            OverloadConfig(**kwargs)

    def test_bad_class_mix_raises_the_typed_weight_error(self):
        with pytest.raises(MixWeightError):
            OverloadConfig(class_mix={"video": 0.5, "data": 0.3})

    def test_unknown_class_mix_names_rejected_at_run(self):
        config = OverloadConfig(
            class_mix={"video": 0.5, "fax": 0.5}, warmup=1.0,
            overload=1.0, sustain=1.0,
        )
        with pytest.raises(ParameterError, match="fax"):
            run_overload(config)

    def test_phase_layout(self):
        config = OverloadConfig(warmup=10.0, overload=20.0, sustain=5.0)
        assert config.horizon == pytest.approx(35.0)
        phases = config.phases()
        assert [p.name for p in phases] == ["warmup", "overload", "sustain"]
        assert phases[1].start == pytest.approx(10.0)
        assert phases[2].end == pytest.approx(config.horizon)


class TestDefaultRun:
    def test_all_stability_and_conformance_gates_pass(self, default_result):
        assert default_result.failures == []
        assert default_result.ok

    def test_offered_load_is_a_genuine_overload(self, default_result):
        assert default_result.offered_factor >= 2.5
        assert default_result.rejected > 0
        assert 0 < default_result.admitted < default_result.arrivals

    def test_in_system_population_stays_bounded(self, default_result):
        config = OverloadConfig()
        bound = config.max_in_system_factor * default_result.nominal_flows
        assert default_result.max_in_system <= bound

    def test_every_phase_and_class_is_reported(self, default_result):
        reports = default_result.phase_reports
        assert len(reports) == 9  # 3 phases x 3 classes
        names = {r.name for r in reports}
        for phase in ("warmup", "overload", "sustain"):
            for cls in ("video", "data", "voice"):
                assert f"{phase}:{cls}" in names
        for report in reports:
            assert report.ok
            assert report.worst_overflow <= report.bound

    def test_per_class_accounting_covers_every_arrival(self, default_result):
        per_class = default_result.per_class
        assert set(per_class) == {"video", "data", "voice"}
        assert sum(
            c["arrivals"] for c in per_class.values()
        ) == default_result.arrivals
        for counts in per_class.values():
            assert counts["arrivals"] == (
                counts["admitted"] + counts["rejected"]
            )

    def test_digest_is_stable_across_identical_runs(self, default_result):
        rerun = run_overload(OverloadConfig())
        assert rerun.digest == default_result.digest
        assert rerun.as_dict() == default_result.as_dict()

    def test_as_dict_round_trips_the_report(self, default_result):
        out = default_result.as_dict()
        assert out["ok"] is True
        assert out["arrivals"] == default_result.arrivals
        assert len(out["phases"]) == 9
