"""Profile composition, exact peak rates, and seeded arrival schedules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.scenario.profiles import (
    CompositeProfile,
    DiurnalProfile,
    FlashCrowd,
    Phase,
    draw_arrivals,
)


class TestDiurnalProfile:
    def test_interpolates_and_clamps(self):
        profile = DiurnalProfile(((0.0, 2.0), (10.0, 6.0), (20.0, 2.0)))
        assert profile.rate(-5.0) == 2.0
        assert profile.rate(0.0) == 2.0
        assert profile.rate(5.0) == pytest.approx(4.0)
        assert profile.rate(10.0) == 6.0
        assert profile.rate(15.0) == pytest.approx(4.0)
        assert profile.rate(99.0) == 2.0

    def test_validation(self):
        with pytest.raises(ParameterError):
            DiurnalProfile(((0.0, 1.0),))
        with pytest.raises(ParameterError):
            DiurnalProfile(((0.0, 1.0), (0.0, 2.0)))  # duplicate time
        with pytest.raises(ParameterError):
            DiurnalProfile(((5.0, 1.0), (0.0, 2.0)))  # unsorted
        with pytest.raises(ParameterError):
            DiurnalProfile(((0.0, -1.0), (1.0, 2.0)))  # negative rate


class TestFlashCrowd:
    def test_trapezoid_shape(self):
        spike = FlashCrowd(start=10.0, amplitude=8.0, ramp=2.0, hold=3.0,
                           decay=4.0)
        assert spike.rate(9.0) == 0.0
        assert spike.rate(10.0) == 0.0
        assert spike.rate(11.0) == pytest.approx(4.0)
        assert spike.rate(12.0) == 8.0
        assert spike.rate(14.0) == 8.0
        assert spike.rate(17.0) == pytest.approx(4.0)
        assert spike.rate(19.0) == 0.0
        assert spike.rate(50.0) == 0.0

    def test_validation(self):
        with pytest.raises(ParameterError):
            FlashCrowd(start=0.0, amplitude=-1.0)
        with pytest.raises(ParameterError):
            FlashCrowd(start=0.0, amplitude=1.0, ramp=0.0)
        with pytest.raises(ParameterError):
            FlashCrowd(start=0.0, amplitude=1.0, hold=-1.0)


class TestCompositeProfile:
    def test_sums_parts_and_finds_exact_peak(self):
        baseline = DiurnalProfile(((0.0, 2.0), (10.0, 6.0), (20.0, 2.0)))
        spike = FlashCrowd(start=8.0, amplitude=10.0, ramp=1.0, hold=1.0,
                           decay=2.0)
        profile = CompositeProfile((baseline, spike))
        assert profile.rate(9.5) == pytest.approx(
            baseline.rate(9.5) + spike.rate(9.5)
        )
        # Piecewise-linear composite: the peak is at a breakpoint, and
        # it must dominate any dense grid evaluation.
        peak = profile.max_rate(20.0)
        grid = np.linspace(0.0, 20.0, 5001)
        assert peak >= max(profile.rate(float(t)) for t in grid) - 1e-12
        assert peak == pytest.approx(10.0 + baseline.rate(10.0), abs=1e-9)

    def test_needs_parts(self):
        with pytest.raises(ParameterError):
            CompositeProfile(())


class TestPhase:
    def test_validation(self):
        with pytest.raises(ParameterError):
            Phase("p", 1.0, 1.0, 0.05)
        with pytest.raises(ParameterError):
            Phase("p", 0.0, 1.0, 1.5)


class TestDrawArrivals:
    def test_seeded_schedule_is_reproducible(self):
        profile = CompositeProfile((
            DiurnalProfile(((0.0, 1.0), (50.0, 8.0), (100.0, 1.0))),
            FlashCrowd(start=30.0, amplitude=12.0, ramp=2.0, hold=2.0,
                       decay=5.0),
        ))
        a = draw_arrivals(profile, 100.0, np.random.default_rng(7))
        b = draw_arrivals(profile, 100.0, np.random.default_rng(7))
        c = draw_arrivals(profile, 100.0, np.random.default_rng(8))
        assert a == b
        assert a != c
        assert all(0.0 < t < 100.0 for t in a)
        assert a == sorted(a)

    def test_intensity_tracks_the_profile(self):
        # Thinning must concentrate arrivals where the rate is high: the
        # busy half at rate 9 should see ~9x the quiet half at rate 1.
        profile = DiurnalProfile(((0.0, 1.0), (49.999, 1.0), (50.0, 9.0),
                                  (100.0, 9.0)))
        composite = CompositeProfile((profile,))
        times = draw_arrivals(composite, 100.0, np.random.default_rng(0))
        quiet = sum(1 for t in times if t < 50.0)
        busy = sum(1 for t in times if t >= 50.0)
        assert busy > 5 * max(quiet, 1)
        # Totals near the integrated intensity (500 expected).
        assert 350 < len(times) < 650

    def test_validation(self):
        profile = CompositeProfile((DiurnalProfile(((0.0, 1.0), (1.0, 1.0))),))
        with pytest.raises(ParameterError):
            draw_arrivals(profile, 0.0, np.random.default_rng(0))
        zero = CompositeProfile((DiurnalProfile(((0.0, 0.0), (1.0, 0.0))),))
        with pytest.raises(ParameterError):
            draw_arrivals(zero, 1.0, np.random.default_rng(0))
