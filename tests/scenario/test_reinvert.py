"""Online re-inversion properties: monotone, bounded, conservative.

The satellite property: for any measured (T_c, sigma) drift, the
re-inverted certainty-equivalent parameter moves monotonically with the
measurement -- nondecreasing in the measured burstiness (snr), and
nonincreasing in the measured correlation time -- and the installed
value never exceeds the most conservative representable bound while
never being *less* conservative than the exact eqn-15 solution.
"""

from __future__ import annotations

import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConvergenceError, ParameterError
from repro.scenario.reinvert import Reinverter, plan_retarget
from repro.theory.inversion import _ALPHA_MAX, adjusted_ce_alpha

warnings.filterwarnings(
    "ignore", message=".*does not converge.*", module="repro.theory.hitting"
)

# Solver-friendly measurement space (the regimes the soak drifts over).
snrs = st.floats(min_value=0.05, max_value=1.2)
correlation_times = st.floats(min_value=0.2, max_value=20.0)
memories = st.floats(min_value=0.0, max_value=5.0)
P_Q = 0.01
HTS = 2.683  # critical_time_scale(12, 20), the soak default


def exact(snr, tc, memory):
    return adjusted_ce_alpha(
        P_Q, memory=memory, correlation_time=tc,
        holding_time_scaled=HTS, snr=snr,
    )


def planned(snr, tc, memory, **kwargs):
    return plan_retarget(
        P_Q, memory=memory, correlation_time=tc,
        holding_time_scaled=HTS, snr=snr, **kwargs,
    )


class TestPlanRetarget:
    @settings(max_examples=25, deadline=None, derandomize=True)
    @given(snr=snrs, tc=correlation_times, memory=memories)
    def test_bounded_and_never_less_conservative_than_exact(
        self, snr, tc, memory
    ):
        alpha = planned(snr, tc, memory)
        assert 0.0 < alpha <= _ALPHA_MAX
        try:
            truth = exact(snr, tc, memory)
        except ConvergenceError:
            truth = _ALPHA_MAX
        # Quantization rounds up: installed >= exact (capped), so the
        # installed p_ce = Q(alpha) never exceeds the adjusted bound.
        assert alpha >= min(truth, _ALPHA_MAX) - 1e-9

    @settings(max_examples=20, deadline=None, derandomize=True)
    @given(
        snr_lo=snrs, snr_hi=snrs, tc=correlation_times, memory=memories
    )
    def test_monotone_nondecreasing_in_measured_snr(
        self, snr_lo, snr_hi, tc, memory
    ):
        lo, hi = sorted((snr_lo, snr_hi))
        # A burstier measured signal can only demand a more (or equally)
        # conservative target; tolerance covers the quantization grid.
        assert planned(hi, tc, memory) >= planned(lo, tc, memory) - 2e-4

    @settings(max_examples=20, deadline=None, derandomize=True)
    @given(
        snr=snrs, tc_lo=correlation_times, tc_hi=correlation_times,
        memory=memories,
    )
    def test_monotone_nonincreasing_in_measured_correlation_time(
        self, snr, tc_lo, tc_hi, memory
    ):
        lo, hi = sorted((tc_lo, tc_hi))
        # Slower fluctuations average away over a holding time, so a
        # larger measured T_c never demands a harsher target.
        assert planned(snr, hi, memory) <= planned(snr, lo, memory) + 2e-4

    def test_unreachable_target_installs_the_cap(self, monkeypatch):
        def unreachable(*args, **kwargs):
            raise ConvergenceError("unreachable")
        monkeypatch.setattr(
            "repro.scenario.reinvert.adjusted_ce_alpha", unreachable
        )
        assert planned(0.3, 1.0, 0.0) == _ALPHA_MAX
        assert planned(0.3, 1.0, 0.0, cap=5.0) == 5.0

    def test_quantization_rounds_up_on_the_grid(self, monkeypatch):
        monkeypatch.setattr(
            "repro.scenario.reinvert.adjusted_ce_alpha",
            lambda *a, **k: 2.00003,
        )
        assert planned(0.3, 1.0, 0.0, quantize=1e-4) == pytest.approx(2.0001)
        # Values already on the grid stay put.
        monkeypatch.setattr(
            "repro.scenario.reinvert.adjusted_ce_alpha",
            lambda *a, **k: 2.5,
        )
        assert planned(0.3, 1.0, 0.0, quantize=1e-4) == pytest.approx(2.5)

    def test_validation(self):
        with pytest.raises(ParameterError):
            planned(0.3, 1.0, 0.0, cap=0.0)
        with pytest.raises(ParameterError):
            planned(0.3, 1.0, 0.0, quantize=-1.0)


class TestMeasureSnr:
    def test_averages_finite_gauges_across_reachable_shards(self):
        snapshot = {"shards": {
            "s0": {"gauges": {
                "link.l0.mu_hat": 1.0, "link.l0.sigma_hat": 0.3,
                "link.l1.mu_hat": 1.2, "link.l1.sigma_hat": 0.5,
                "link.l0.n_flows": 7,  # not a measurement gauge
            }},
            "s1": {"unreachable": "ConnectionError: gone"},
            "s2": {"gauges": {
                "link.l0.mu_hat": None,  # json_safe'd NaN: skipped
                "link.l0.sigma_hat": 0.4,
            }},
        }}
        snr = Reinverter.measure_snr(snapshot)
        assert snr == pytest.approx((0.3 + 0.5 + 0.4) / 3 / ((1.0 + 1.2) / 2))

    def test_no_measurements_returns_none(self):
        assert Reinverter.measure_snr({"shards": {}}) is None
        assert Reinverter.measure_snr({"shards": {
            "s0": {"gauges": {"link.l0.mu_hat": None}},
        }}) is None
