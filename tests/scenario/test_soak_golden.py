"""Golden soak regression: a short seeded day's digests are pinned.

A compressed day (60 simulated seconds, seed 11, two base shards, no
replicas) that still exercises the whole scenario — two autoscale-ups,
one autoscale-down, one online re-inversion, clean reconciliation — is
committed under ``tests/scenario/data/`` as per-shard decision digests
plus the phase report and event log.  The test re-runs the soak and
asserts the run reproduces the committed evidence exactly, so any
change to admission behavior, migration order, journal replay or the
re-inversion pipeline fails loudly here.

Determinism rests on the same contract as the replay golden: shards
boot with an explicit closed-form alpha (no scipy on the decision
path), the one online re-inversion ceil-quantizes its solver output to
a 1e-4 grid, and every scenario event rides the loadgen's seeded
single-sequence simulated clock.

Regenerate after an *intentional* behavior change with::

    PYTHONPATH=src python tests/scenario/test_soak_golden.py --regen
"""

from __future__ import annotations

import asyncio
import json
import sys
from pathlib import Path

import pytest

from repro.scenario.gates import evaluate_gates
from repro.scenario.soak import SoakConfig, run_soak

DATA_DIR = Path(__file__).parent / "data"
META_PATH = DATA_DIR / "soak_meta.json"

#: Small enough for tier-1, rich enough to hit every scenario path.
GOLDEN_CONFIG = SoakConfig(seed=11, day=60.0, holding_time=8.0, replicas=0)


def summarize(result) -> dict:
    """The deterministic evidence a run must reproduce byte for byte.

    Wall-clock fields (latency, wall_seconds, decisions_per_sec) are
    deliberately absent; everything here is a pure function of the
    config.
    """
    report = result.report
    return {
        "config": {
            "seed": GOLDEN_CONFIG.seed,
            "day": GOLDEN_CONFIG.day,
            "holding_time": GOLDEN_CONFIG.holding_time,
            "shards": GOLDEN_CONFIG.shards,
            "replicas": GOLDEN_CONFIG.replicas,
            "alpha": GOLDEN_CONFIG.alpha,
        },
        "digests": result.digests,
        "events": list(result.events),
        "phases": [p.as_dict() for p in result.phase_reports],
        "reinversions": list(result.reinversions),
        "report": {
            "arrivals": report.arrivals,
            "admitted": report.admitted,
            "rejected": report.rejected,
            "departures": report.departures,
            "shed": report.shed,
            "errors": report.errors,
        },
        "reconcile": {
            "ok": result.reconcile["ok"],
            "lost": result.reconcile["lost"],
            "double_admitted": result.reconcile["double_admitted"],
        },
    }


@pytest.fixture(scope="module")
def golden_run():
    return asyncio.run(run_soak(GOLDEN_CONFIG))


@pytest.mark.slow
class TestGoldenSoak:
    def test_matches_committed_golden(self, golden_run):
        committed = json.loads(META_PATH.read_text())
        live = json.loads(json.dumps(summarize(golden_run)))
        assert live["digests"] == committed["digests"], (
            "soak decision digests diverged from the committed golden; "
            "if intentional, regenerate with "
            "`python tests/scenario/test_soak_golden.py --regen`"
        )
        assert live == committed, (
            "soak evidence (events/phases/report) changed vs the "
            "committed golden; if intentional, regenerate the data file"
        )

    def test_gates_hold(self, golden_run):
        failures = evaluate_gates(
            phase_reports=golden_run.phase_reports,
            events=golden_run.events,
            reconcile=golden_run.reconcile,
            report=golden_run.report,
        )
        assert failures == []

    def test_golden_day_is_interesting(self, golden_run):
        # The pinned run must actually exercise what it claims to pin:
        # both autoscale directions, an online re-inversion that changed
        # the installed target, both admission outcomes, live migration.
        assert golden_run.scale_ups >= 2
        assert golden_run.scale_downs >= 1
        assert golden_run.retargets >= 1
        assert golden_run.reinversions[0]["alpha"] != GOLDEN_CONFIG.alpha
        assert golden_run.report.admitted > 0
        assert golden_run.report.rejected > 0
        migrated = sum(
            e.get("migrated", 0) for e in golden_run.events
            if e["event"] in ("added", "removed")
        )
        assert migrated > 0


def regen():  # pragma: no cover - maintenance entry point
    DATA_DIR.mkdir(exist_ok=True)
    result = asyncio.run(run_soak(GOLDEN_CONFIG))
    META_PATH.write_text(
        json.dumps(summarize(result), indent=2, sort_keys=True) + "\n"
    )
    print(f"golden soak: {result.report.arrivals} arrivals, "
          f"{result.scale_ups} ups / {result.scale_downs} downs / "
          f"{result.retargets} retargets -> {META_PATH}")
    for shard, digest in sorted(result.digests.items()):
        print(f"  {shard}: {digest}")


if __name__ == "__main__":  # pragma: no cover
    if "--regen" in sys.argv:
        regen()
    else:
        print(__doc__)
        sys.exit(2)
