"""Shared helpers for the service test suite.

Gateways here are fully deterministic (memoryless estimators over a
cycling :class:`TraceFeed` of one known cross-section), so two gateways
built by :func:`make_gateway` decide identically -- the property every
digest-equality test in this package leans on.
"""

from __future__ import annotations

import asyncio

from repro.core.controllers import CertaintyEquivalentController
from repro.core.estimators import CrossSection, MemorylessEstimator
from repro.runtime.feed import TraceFeed
from repro.runtime.gateway import AdmissionGateway
from repro.runtime.link import ManagedLink
from repro.runtime.metrics import MetricsRegistry

CAPACITY = 20.0
HOLDING_TIME = 100.0
STALE_HORIZON = 5.0


def run(coro):
    """Run one coroutine to completion on a fresh event loop."""
    return asyncio.run(coro)


def make_section(n=6, mean=1.0, var=0.09) -> CrossSection:
    """A cross-section with exact moments (second moment made consistent)."""
    m2 = mean * mean + var * (n - 1) / n if n else 0.0
    return CrossSection(n=n, mean=mean, second_moment=m2, variance=var)


def make_link(name: str, registry: MetricsRegistry, *, capacity=CAPACITY) -> ManagedLink:
    """A deterministic link (plain target ~17.91 at the test section)."""
    feed = TraceFeed([make_section()], period=1.0, cycle=True)
    return ManagedLink(
        name,
        capacity=capacity,
        holding_time=HOLDING_TIME,
        mean_rate=1.0,
        feed=feed,
        estimator=MemorylessEstimator(),
        controller=CertaintyEquivalentController(capacity, 0.05),
        conservative_controller=CertaintyEquivalentController(capacity, alpha=3.0),
        stale_horizon=STALE_HORIZON,
        registry=registry,
    )


def make_gateway(n_links: int = 2, *, capacity=CAPACITY) -> AdmissionGateway:
    """A deterministic gateway; identical calls build identical twins."""
    registry = MetricsRegistry()
    links = [
        make_link(f"link{i}", registry, capacity=capacity)
        for i in range(n_links)
    ]
    return AdmissionGateway(links, placement="least-loaded", registry=registry)
