"""Flow classes on the wire: v2 frames, journal ops, server dispatch.

The contract under test: a ``flow_class`` tag rides admit/admit_many in
both wire versions and in the journal, classed journals replay to the
served digest on a fresh twin, and classless traffic produces frames and
journals that are byte-identical to the pre-class protocol (v1 peers
never see the field at all).
"""

from __future__ import annotations

import asyncio
import struct

import pytest

from repro.classes.factory import build_classed_gateway
from repro.errors import ProtocolError
from repro.service.client import AsyncAdmissionClient
from repro.service.protocol import (
    JOURNAL_OPS,
    PROTOCOL_VERSION,
    PROTOCOL_VERSION_2,
    V2_MAGIC,
    decode_frame_body,
    encode_request,
    make_request,
    validate_request,
)
from repro.service.server import AdmissionServer, replay_journal

from .conftest import make_gateway, run

_LENGTH = struct.Struct("!I")


def roundtrip(payload: dict, version=PROTOCOL_VERSION_2) -> tuple[bytes, dict]:
    frame = encode_request(payload, version)
    (length,) = _LENGTH.unpack(frame[:4])
    body = frame[4:]
    assert len(body) == length
    return body, decode_frame_body(body)


def classed_gateway():
    gateway, _ = build_classed_gateway(
        links=1, capacity=50.0, holding_time=100.0, seed=3
    )
    return gateway


class TestV2ClassFrames:
    def test_admit_with_class_stays_binary_and_round_trips(self):
        body, decoded = roundtrip(
            make_request("admit", 7, flow="f-1", t=1.5, flow_class="video")
        )
        assert body[0] == V2_MAGIC
        assert decoded == {
            "v": 2, "id": 7, "op": "admit", "t": 1.5,
            "flow": "f-1", "flow_class": "video",
        }

    def test_admit_many_with_class_round_trips(self):
        _, decoded = roundtrip(
            make_request(
                "admit_many", 9, flows=["a", 5, "b"], flow_class="voice"
            )
        )
        assert decoded["flows"] == ["a", 5, "b"]
        assert decoded["flow_class"] == "voice"

    def test_classless_admit_frame_is_byte_identical_to_pre_class(self):
        """flow_class=None must not change a single bit on the wire."""
        with_none = encode_request(
            make_request("admit", 7, flow="f", t=1.0, flow_class=None),
            PROTOCOL_VERSION_2,
        )
        without = encode_request(
            make_request("admit", 7, flow="f", t=1.0), PROTOCOL_VERSION_2
        )
        assert with_none == without
        _, decoded = roundtrip(make_request("admit", 7, flow="f", t=1.0))
        assert "flow_class" not in decoded

    def test_non_string_class_falls_back_to_json(self):
        body, decoded = roundtrip(
            make_request("admit", 1, flow="f", flow_class=7)
        )
        assert body[0] != V2_MAGIC  # not binary-encodable; JSON carries it
        assert decoded["flow_class"] == 7  # validation rejects it later

    def test_v1_json_carries_the_class_key(self):
        body, decoded = roundtrip(
            make_request("admit", 3, flow="f", flow_class="data"),
            PROTOCOL_VERSION,
        )
        assert body[0] != V2_MAGIC
        assert decoded["flow_class"] == "data"


class TestValidation:
    def test_valid_class_and_null_pass(self):
        for flow_class in ("video", None):
            payload = make_request(
                "admit", 1, flow="f", t=1.0, flow_class=flow_class
            )
            assert validate_request(payload) is payload

    @pytest.mark.parametrize("bad", ["", 7, 1.5, ["video"]])
    def test_bad_class_rejected(self, bad):
        with pytest.raises(ProtocolError):
            validate_request(
                make_request("admit", 1, flow="f", flow_class=bad)
            )
        with pytest.raises(ProtocolError):
            validate_request(
                make_request("admit_many", 1, flows=["f"], flow_class=bad)
            )


class TestClassedJournalFrames:
    def test_journal_ops_appended_not_renumbered(self):
        """The classed ops extend JOURNAL_OPS at the end: existing binary
        op codes (positional) must never shift under old journals."""
        assert JOURNAL_OPS[-2:] == ("admit_class", "admit_many_class")

    def test_journal_sync_round_trips_classed_entries(self):
        entries = [
            ("admit", "f0", 1.0),
            ("admit_class", ["f1", "video"], 2.0),
            ("admit_many_class", [["f2", "f3", 7], "voice"], 3.0),
            ("depart", "f0", 4.0),
        ]
        body, decoded = roundtrip(make_request(
            "journal-sync", 5, shard="s0", seq=9, start=0,
            digest="ab" * 32, entries=entries,
        ))
        assert body[0] == V2_MAGIC
        assert decoded["entries"] == [list(e) for e in [
            ("admit", "f0", 1.0),
            ("admit_class", ["f1", "video"], 2.0),
            ("admit_many_class", [["f2", "f3", 7], "voice"], 3.0),
            ("depart", "f0", 4.0),
        ]]


class TestServerClassedDispatch:
    def request(self, op, request_id, **fields):
        return make_request(op, request_id, **fields)

    def drive(self, gateway):
        """40 classed admits + departs through the dispatcher."""
        async def scenario():
            server = AdmissionServer(
                gateway, collect_digest=True, keep_journal=True
            )
            await server.start_dispatcher()
            try:
                t = 0.0
                classes = ("video", "data", "voice")
                for i in range(40):
                    t += 0.25
                    await server.submit(self.request(
                        "admit", i, flow=f"f{i}", t=t,
                        flow_class=classes[i % 3],
                    ))
                    if i >= 10:
                        await server.submit(self.request(
                            "depart", 100 + i, flow=f"f{i - 10}", t=t
                        ))
                await server.submit(self.request(
                    "admit_many", 500, flows=["b0", "b1"], t=t + 1.0,
                    flow_class="data",
                ))
            finally:
                await server.stop()
            return server

        return run(scenario())

    def test_classed_journal_replays_to_the_served_digest(self):
        server = self.drive(classed_gateway())
        ops = {op for op, _, _ in server.journal}
        assert ops & {"admit_class", "admit_many_class"}
        assert replay_journal(classed_gateway(), server.journal) == (
            server.digest()
        )

    def test_classless_journal_never_uses_classed_ops(self):
        """No classes on the wire -> the journal is the pre-class one."""
        async def scenario():
            server = AdmissionServer(
                make_gateway(), collect_digest=True, keep_journal=True
            )
            await server.start_dispatcher()
            try:
                for i in range(10):
                    await server.submit(self.request(
                        "admit", i, flow=f"f{i}", t=1.0 + i
                    ))
            finally:
                await server.stop()
            return server

        server = run(scenario())
        ops = {op for op, _, _ in server.journal}
        assert not ops & {"admit_class", "admit_many_class"}

    def test_coalescing_splits_runs_at_class_boundaries(self):
        """Consecutive single admits coalesce only within one class, so
        the journalled admit_many_class batches are class-pure."""
        async def scenario():
            server = AdmissionServer(
                classed_gateway(), collect_digest=True, keep_journal=True
            )
            await server.start_dispatcher()
            try:
                futures = [
                    server._submit_start(self.request(
                        "admit", i, flow=f"f{i}", t=1.0 + i * 0.1,
                        flow_class="video" if i < 3 else "voice",
                    ))
                    for i in range(6)
                ]
                await asyncio.gather(*futures)
            finally:
                await server.stop()
            return server

        server = run(scenario())
        assert [op for op, _, _ in server.journal] == [
            "admit_many_class", "admit_many_class"
        ]
        assert server.journal[0][1] == [["f0", "f1", "f2"], "video"]
        assert server.journal[1][1] == [["f3", "f4", "f5"], "voice"]

    def test_depart_uses_the_remembered_class(self):
        """Departures carry no class on the wire; the gateway bills the
        release to the class it remembered from the admit."""
        gateway = classed_gateway()
        server = self.drive(gateway)
        link = gateway.snapshot()["links"]["link0"]
        total_by_class = sum(
            stats["n_flows"] for stats in link["classes"].values()
        )
        assert total_by_class == gateway.n_flows  # nothing leaked classless


class TestV1Interop:
    def test_v1_client_sends_classes_and_classless_peers_still_work(self):
        async def scenario():
            server = AdmissionServer(classed_gateway(), collect_digest=True)
            async with server.serving() as (host, port):
                classed = AsyncAdmissionClient(
                    host, port, wire_version=PROTOCOL_VERSION
                )
                legacy = AsyncAdmissionClient(
                    host, port, wire_version=PROTOCOL_VERSION
                )
                try:
                    # The classless bootstrap admit goes first: an empty
                    # pooled estimate on a non-empty link fails closed.
                    plain = await legacy.admit("f1", t=1.0)
                    tagged = await classed.admit(
                        "f0", t=2.0, flow_class="video"
                    )
                    snapshot = await classed.snapshot()
                finally:
                    await classed.close()
                    await legacy.close()
            return tagged, plain, snapshot

        tagged, plain, snapshot = run(scenario())
        assert tagged.admitted and plain.admitted
        classes = snapshot["links"]["link0"]["classes"]
        assert classes["video"]["n_flows"] == 1
        # The classless peer's flow is pooled, not billed to any class.
        assert sum(c["n_flows"] for c in classes.values()) == 1
