"""Client tests: retry/backoff semantics, sync wrapper, address parsing."""

from __future__ import annotations

import asyncio
import queue
import threading

import pytest

from repro.errors import ParameterError, RemoteError, RuntimeStateError
from repro.service.client import (
    AsyncAdmissionClient,
    SyncAdmissionClient,
    parse_address,
)
from repro.service.protocol import (
    error_response,
    ok_response,
    read_frame,
    write_frame,
)
from repro.service.server import AdmissionServer

from .conftest import make_gateway, run


class TestParseAddress:
    def test_good(self):
        assert parse_address("127.0.0.1:7750") == ("127.0.0.1", 7750)
        assert parse_address("example.test:1") == ("example.test", 1)

    def test_bad(self):
        for spec in ("nope", ":7750", "host:", "host:seven"):
            with pytest.raises(ParameterError):
                parse_address(spec)


class TestClientValidation:
    def test_constructor_rejects_bad_knobs(self):
        for kwargs in (
            {"timeout": 0.0},
            {"retries": -1},
            {"backoff": 0.0},
            {"backoff": 2.0, "backoff_cap": 1.0},
        ):
            with pytest.raises(ParameterError):
                AsyncAdmissionClient("h", 1, **kwargs)


async def scripted_server(responses):
    """A raw TCP server answering each request from a canned list."""
    remaining = list(responses)

    async def handle(reader, writer):
        while remaining:
            frame = await read_frame(reader)
            if frame is None:
                break
            reply = remaining.pop(0)
            if reply == "drop":
                break  # close mid-call without answering
            if callable(reply):
                reply = reply(frame)
            await write_frame(writer, reply)
        writer.close()

    server = await asyncio.start_server(handle, "127.0.0.1", 0)
    host, port = server.sockets[0].getsockname()[:2]
    return server, host, port


class TestRetries:
    def test_connection_refused_exhausts_retries(self):
        async def scenario():
            # Bind-then-close guarantees a dead port.
            probe = await asyncio.start_server(
                lambda r, w: None, "127.0.0.1", 0
            )
            port = probe.sockets[0].getsockname()[1]
            probe.close()
            await probe.wait_closed()
            client = AsyncAdmissionClient(
                "127.0.0.1", port, retries=2, backoff=0.001
            )
            with pytest.raises(OSError):
                await client.ping()
            return client.retried

        assert run(scenario()) == 2

    def test_retryable_error_frame_is_retried(self):
        async def scenario():
            server, host, port = await scripted_server([
                lambda f: error_response(f["id"], "overloaded", "busy"),
                lambda f: ok_response(f["id"], {"pong": True}),
            ])
            client = AsyncAdmissionClient(host, port, retries=3, backoff=0.001)
            try:
                result = await client.ping()
            finally:
                await client.close()
                server.close()
                await server.wait_closed()
            return result, client.retried

        result, retried = run(scenario())
        assert result == {"pong": True}
        assert retried == 1

    def test_hard_error_frame_is_not_retried(self):
        async def scenario():
            server, host, port = await scripted_server([
                lambda f: error_response(f["id"], "state-error", "duplicate"),
            ])
            client = AsyncAdmissionClient(host, port, retries=3, backoff=0.001)
            try:
                with pytest.raises(RemoteError) as exc:
                    await client.admit("f1", t=1.0)
            finally:
                await client.close()
                server.close()
                await server.wait_closed()
            return exc.value, client.retried

        error, retried = run(scenario())
        assert error.code == "state-error" and not error.retryable
        assert retried == 0

    def test_mid_call_disconnect_reconnects_and_retries(self):
        async def scenario():
            server, host, port = await scripted_server([
                "drop",
                lambda f: ok_response(f["id"], {"pong": True}),
            ])
            client = AsyncAdmissionClient(host, port, retries=2, backoff=0.001)
            try:
                result = await client.ping()
            finally:
                await client.close()
                server.close()
                await server.wait_closed()
            return result, client.retried

        result, retried = run(scenario())
        assert result == {"pong": True}
        assert retried == 1

    def test_mismatched_response_id_is_a_hard_error(self):
        async def scenario():
            server, host, port = await scripted_server([
                lambda f: ok_response(f["id"] + 1, {}),
            ])
            client = AsyncAdmissionClient(host, port, retries=0)
            try:
                with pytest.raises(RemoteError) as exc:
                    await client.ping()
                # Regression: the stream is desynchronized, so the
                # connection must be torn down *before* the error
                # surfaces -- a later call gets a fresh connection
                # instead of reading some other request's answer.
                torn_down = not client.connected
            finally:
                await client.close()
                server.close()
                await server.wait_closed()
            return exc.value.code, torn_down

        code, torn_down = run(scenario())
        assert code == "bad-frame"
        assert torn_down

    def test_out_of_order_answers_to_pipelined_requests_are_matched(self):
        """Two in-flight requests answered in reverse order: legal under
        pipelining -- the correlation table routes each to its caller."""

        async def scenario():
            held: list = []

            async def handle(reader, writer):
                frames = [await read_frame(reader), await read_frame(reader)]
                for frame in reversed(frames):
                    await write_frame(
                        writer,
                        ok_response(
                            frame["id"],
                            {"t": 1.0, "link": f"answer-{frame['flow']}"},
                        ),
                    )
                held.append(writer)  # keep open until the test ends

            server = await asyncio.start_server(handle, "127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            client = AsyncAdmissionClient(host, port, retries=0)
            try:
                links = await asyncio.gather(
                    client.depart("a", t=1.0), client.depart("b", t=1.0)
                )
            finally:
                await client.close()
                server.close()
                await server.wait_closed()
            return links

        # Each caller got the answer carrying its own request id.
        assert run(scenario()) == ["answer-a", "answer-b"]


class TestDeadlines:
    def test_deadline_covers_the_whole_roundtrip(self):
        """Regression: the per-request timeout used to start only at the
        read, so a peer that accepted but never answered could stall a
        call for connect+write on top of the deadline.  Now one deadline
        covers connect, write and read together."""

        async def scenario():
            stall = asyncio.Event()

            async def handle(reader, writer):
                await stall.wait()
                writer.close()

            server = await asyncio.start_server(handle, "127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            client = AsyncAdmissionClient(
                host, port, timeout=0.2, retries=0
            )
            loop = asyncio.get_running_loop()
            t0 = loop.time()
            try:
                with pytest.raises(asyncio.TimeoutError):
                    await client.ping()
                elapsed = loop.time() - t0
            finally:
                stall.set()
                await client.close()
                server.close()
                await server.wait_closed()
            return elapsed

        # Bounded by the 0.2s deadline, with generous slack for CI.
        assert run(scenario()) < 2.0

    def test_late_answer_after_timeout_does_not_desync(self):
        """A response landing after its request timed out must be
        discarded, not mistaken for the next request's answer."""

        async def scenario():
            async def handle(reader, writer):
                first = await read_frame(reader)
                await asyncio.sleep(0.3)  # well past the client deadline
                await write_frame(writer, ok_response(first["id"], {"n": 1}))
                second = await read_frame(reader)
                await write_frame(writer, ok_response(second["id"], {"n": 2}))

            server = await asyncio.start_server(handle, "127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            client = AsyncAdmissionClient(
                host, port, timeout=0.1, retries=0
            )
            try:
                with pytest.raises(asyncio.TimeoutError):
                    await client.ping()
                # A timeout alone must not tear down the connection ...
                still_connected = client.connected
                # ... and once the stale answer drains, the stream is
                # still in sync for the next call.
                await asyncio.sleep(0.4)
                result = await client.ping()
            finally:
                await client.close()
                server.close()
                await server.wait_closed()
            return still_connected, result

        still_connected, result = run(scenario())
        assert still_connected
        assert result == {"n": 2}


class TestAgainstRealServer:
    def test_full_surface(self):
        async def scenario():
            server = AdmissionServer(make_gateway(), collect_digest=True)
            async with server.serving() as (host, port):
                async with AsyncAdmissionClient(host, port) as client:
                    assert (await client.ping())["pong"]
                    decision = await client.admit("f1", t=1.0)
                    assert decision.admitted
                    decisions = await client.admit_many(["f2", "f3"], t=2.0)
                    assert len(decisions) == 2
                    assert await client.depart("f1", t=3.0)
                    assert await client.depart_many(["f2", "f3"], t=4.0) == 2
                    snapshot = await client.snapshot()
                    health = await client.health()
            assert snapshot["service"]["decisions"] == 3
            assert health["n_flows"] == 0

        run(scenario())


class TestAdmitClientJson:
    def test_json_output_is_strict_even_with_nan_fields(self, capsys):
        # Regression: `admit-client admit --json` serialized the decision
        # with dataclasses.asdict + json.dumps (allow_nan=True), so a NaN
        # target (every quarantined rejection has one) printed as a bare
        # NaN token -- invalid strict JSON, unlike the wire protocol's
        # NaN -> null convention.
        import json

        from repro.cli import main

        ready: queue.Queue = queue.Queue()
        stop = threading.Event()

        def serve():
            async def serve_main():
                gateway = make_gateway()
                for link in gateway.links:
                    link.breaker.trip(1.0)  # quarantined: NaN target
                gateway.tick(1.0)
                server = AdmissionServer(gateway)
                host, port = await server.start()
                ready.put((host, port))
                while not stop.is_set():
                    await asyncio.sleep(0.01)
                await server.stop()

            asyncio.run(serve_main())

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        host, port = ready.get(timeout=5.0)
        try:
            code = main(
                ["admit-client", f"{host}:{port}", "admit", "flow-x",
                 "--t", "1.5", "--json"]
            )
        finally:
            stop.set()
            thread.join(timeout=5.0)
        assert code == 0

        def reject_constant(token):
            raise AssertionError(f"non-strict JSON token {token!r} in output")

        payload = json.loads(
            capsys.readouterr().out, parse_constant=reject_constant
        )
        assert payload["admitted"] is False
        assert payload["reason"] == "quarantined"
        assert payload["target"] is None


class TestSyncClose:
    def test_close_is_idempotent_and_post_close_calls_raise(self):
        client = SyncAdmissionClient("127.0.0.1", 1)
        client.close()
        client.close()  # second close is a no-op, not an error
        for call in (client.ping, client.health, client.snapshot):
            with pytest.raises(RuntimeStateError):
                call()
        with pytest.raises(RuntimeStateError):
            client.admit("f1", t=1.0)

    def test_nested_context_managers_and_belt_and_braces_close(self):
        ready: queue.Queue = queue.Queue()
        stop = threading.Event()

        def serve():
            async def main():
                server = AdmissionServer(make_gateway())
                host, port = await server.start()
                ready.put((host, port))
                while not stop.is_set():
                    await asyncio.sleep(0.01)
                await server.stop()

            asyncio.run(main())

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        host, port = ready.get(timeout=5.0)
        try:
            with SyncAdmissionClient(host, port, timeout=5.0) as client:
                with client:  # nested use closes twice on the way out
                    assert client.ping()["pong"]
            client.close()  # belt-and-braces close after both exits
            with pytest.raises(RuntimeStateError):
                client.ping()
        finally:
            stop.set()
            thread.join(timeout=5.0)


class TestSyncClient:
    def test_round_trip_from_a_plain_thread(self):
        ready: queue.Queue = queue.Queue()
        stop = threading.Event()

        def serve():
            async def main():
                server = AdmissionServer(make_gateway())
                host, port = await server.start()
                ready.put((host, port))
                while not stop.is_set():
                    await asyncio.sleep(0.01)
                await server.stop()

            asyncio.run(main())

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        host, port = ready.get(timeout=5.0)
        try:
            with SyncAdmissionClient(host, port, timeout=5.0) as client:
                assert client.ping()["pong"]
                decision = client.admit("f1", t=1.0)
                assert decision.admitted
                assert len(client.admit_many(["f2"], t=1.5)) == 1
                assert client.depart("f1", t=2.0).startswith("link")
                assert client.depart_many(["f2"], t=2.5) == 1
                assert client.health()["n_flows"] == 0
                assert client.snapshot()["service"]["decisions"] == 2
        finally:
            stop.set()
            thread.join(timeout=5.0)
        assert not thread.is_alive()
