"""Cluster tests: consistent hashing, health-aware routing, aggregation."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.errors import ParameterError, RemoteError, UnknownFlowError
from repro.service.cluster import HashRing, ShardedCluster
from repro.service.server import AdmissionServer

from .conftest import make_gateway, run

KEYS = [f"flow-{i}" for i in range(400)]

node_names = st.lists(
    st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=12
    ),
    min_size=2,
    max_size=8,
    unique=True,
)


class TestHashRing:
    def test_pure_function_of_the_node_set(self):
        a = HashRing(["s0", "s1", "s2"])
        b = HashRing(["s2", "s0", "s1"])  # insertion order must not matter
        assert all(a.node_for(k) == b.node_for(k) for k in KEYS)

    def test_membership_and_len(self):
        ring = HashRing(["s0", "s1"])
        assert len(ring) == 2 and "s0" in ring and "s2" not in ring
        assert ring.nodes == frozenset({"s0", "s1"})

    def test_add_duplicate_and_remove_unknown_raise(self):
        ring = HashRing(["s0"])
        with pytest.raises(ParameterError):
            ring.add("s0")
        with pytest.raises(ParameterError):
            ring.remove("ghost")

    def test_empty_ring_raises(self):
        with pytest.raises(ParameterError):
            HashRing([]).node_for("k")
        with pytest.raises(ParameterError):
            HashRing(vnodes=0)

    def test_iter_nodes_walks_every_node_once(self):
        ring = HashRing(["s0", "s1", "s2", "s3"])
        walk = list(ring.iter_nodes("some-key"))
        assert sorted(walk) == ["s0", "s1", "s2", "s3"]
        assert walk[0] == ring.node_for("some-key")

    @settings(max_examples=50, deadline=None)
    @given(nodes=node_names)
    def test_removal_only_remaps_the_removed_nodes_keys(self, nodes):
        """The consistent-hashing contract, exactly: keys not owned by the
        removed node keep their owner."""
        ring = HashRing(nodes)
        before = {key: ring.node_for(key) for key in KEYS}
        victim = nodes[0]
        ring.remove(victim)
        for key, owner in before.items():
            if owner != victim:
                assert ring.node_for(key) == owner

    @settings(max_examples=50, deadline=None)
    @given(nodes=node_names, fresh=st.integers(min_value=0, max_value=10 ** 9))
    def test_addition_only_steals_keys_for_the_new_node(self, nodes, fresh):
        new_node = f"new-{fresh}"
        if new_node in nodes:
            return
        ring = HashRing(nodes)
        before = {key: ring.node_for(key) for key in KEYS}
        ring.add(new_node)
        for key, owner in before.items():
            after = ring.node_for(key)
            assert after in (owner, new_node)

    def test_rebalance_fraction_is_about_one_over_n(self):
        """Statistical shape check: adding the (N+1)-th shard re-routes
        roughly 1/(N+1) of keys -- at every vnode count (more vnodes
        tighten the concentration, so the generous bound holds for all)."""
        many_keys = [f"k{i}" for i in range(4000)]
        for vnodes in (16, 64, 128):
            for n in (2, 4, 8):
                nodes = [f"s{i}" for i in range(n)]
                ring = HashRing(nodes, vnodes=vnodes)
                before = {key: ring.node_for(key) for key in many_keys}
                ring.add("extra")
                moved = sum(
                    1 for key in many_keys if ring.node_for(key) != before[key]
                )
                expected = len(many_keys) / (n + 1)
                assert 0.3 * expected <= moved <= 2.5 * expected, (
                    vnodes, n, moved, expected,
                )

    @settings(max_examples=40, deadline=None, derandomize=True)
    @given(
        nodes=node_names,
        vnodes=st.sampled_from((8, 16, 64, 128)),
        fresh=st.integers(min_value=0, max_value=10 ** 9),
    )
    def test_add_remove_transition_is_stable_for_any_vnode_count(
        self, nodes, vnodes, fresh
    ):
        """Ring-resize transition invariants, for any vnode count: an
        added node only steals keys for itself -- boundedly ~1/N of them,
        which is exactly the migration volume a live resize pays -- and
        removing it restores the pre-add mapping key for key."""
        new_node = f"new-{fresh}"
        if new_node in nodes:
            return
        ring = HashRing(nodes, vnodes=vnodes)
        before = {key: ring.node_for(key) for key in KEYS}
        ring.add(new_node)
        during = {key: ring.node_for(key) for key in KEYS}
        moved = 0
        for key in KEYS:
            assert during[key] in (before[key], new_node)
            moved += during[key] != before[key]
        # The ~1/N remap bound (generous: few vnodes concentrate poorly).
        n_after = len(nodes) + 1
        assert moved <= len(KEYS) * min(1.0, 4.0 / n_after)
        ring.remove(new_node)
        assert {key: ring.node_for(key) for key in KEYS} == before


def make_cluster(n_shards=3):
    servers = [
        AdmissionServer(make_gateway(), name=f"s{i}", collect_digest=True)
        for i in range(n_shards)
    ]
    return ShardedCluster(servers)


def quarantine(server: AdmissionServer, now: float) -> None:
    for link in server.gateway.links:
        link.breaker.trip(now)
    server.gateway.tick(now)


class TestShardedCluster:
    def test_needs_shards_with_unique_names(self):
        with pytest.raises(ParameterError):
            ShardedCluster([])
        twins = [
            AdmissionServer(make_gateway(), name="dup") for _ in range(2)
        ]
        with pytest.raises(ParameterError):
            ShardedCluster(twins)

    def test_admit_routes_to_the_ring_owner(self):
        async def scenario():
            cluster = make_cluster()
            async with cluster:
                decision = await cluster.admit("flow-1", t=1.0)
                owner = cluster.ring.node_for("flow-1")
                assert decision.admitted
                assert cluster.shard_of("flow-1") == owner
                assert cluster.rebalanced == 0
                # Departure goes to the carrying shard and clears the table.
                assert await cluster.depart("flow-1", t=2.0)
                assert cluster.shard_of("flow-1") is None
                assert cluster.n_flows == 0

        run(scenario())

    def test_admit_many_partitions_and_preserves_order(self):
        async def scenario():
            cluster = make_cluster()
            flows = [f"flow-{i}" for i in range(24)]
            async with cluster:
                decisions = await cluster.admit_many(flows, t=1.0)
                assert len(decisions) == len(flows)
                admitted = [
                    f for f, d in zip(flows, decisions) if d.admitted
                ]
                for flow in admitted:
                    assert cluster.shard_of(flow) == cluster.ring.node_for(flow)
                assert await cluster.depart_many(admitted, t=2.0) == len(admitted)
                assert cluster.n_flows == 0
                # Per-shard submissions stayed batched: at most one
                # admit_many request per shard.
                snapshot = await cluster.snapshot()
                return snapshot

        snapshot = run(scenario())
        assert snapshot["n_flows"] == 0
        assert snapshot["totals"]["gateway.admits"] > 0

    def test_duplicate_admit_is_refused_even_after_health_change(self):
        # Regression: without a cluster-level guard, a re-admitted flow
        # whose home shard's health changed routes to a *different* shard
        # (per-shard gateways cannot see the duplicate), double-admits,
        # and leaks the original shard's capacity forever.
        async def scenario():
            cluster = make_cluster()
            async with cluster:
                assert (await cluster.admit("flow-1", t=1.0)).admitted
                home = cluster.shard_of("flow-1")
                quarantine(cluster.shards[home], 1.2)
                with pytest.raises(RemoteError) as exc:
                    await cluster.admit("flow-1", t=1.5)
                assert exc.value.code == "state-error"
                assert not exc.value.retryable
                # Whole-burst validation: nothing is submitted when any
                # flow in the burst duplicates an active or sibling one.
                with pytest.raises(RemoteError):
                    await cluster.admit_many(["fresh", "flow-1"], t=1.5)
                with pytest.raises(RemoteError):
                    await cluster.admit_many(["twin", "twin"], t=1.5)
                assert cluster.shard_of("flow-1") == home
                assert cluster.shard_of("fresh") is None
                assert cluster.n_flows == 1
                # The original placement still accepts the departure.
                assert await cluster.depart("flow-1", t=1.6)

        run(scenario())

    def test_depart_unknown_flow_raises(self):
        async def scenario():
            cluster = make_cluster()
            async with cluster:
                with pytest.raises(UnknownFlowError):
                    await cluster.depart("ghost")
                with pytest.raises(UnknownFlowError):
                    await cluster.depart_many(["ghost1", "ghost2"])

        run(scenario())

    def test_rebalances_away_from_quarantined_shard(self):
        async def scenario():
            cluster = make_cluster()
            async with cluster:
                # Find a flow homed on s1, then quarantine s1.
                flow = next(
                    f for f in (f"probe-{i}" for i in range(10_000))
                    if cluster.ring.node_for(f) == "s1"
                )
                quarantine(cluster.shards["s1"], 1.0)
                decision = await cluster.admit(flow, t=2.0)
                assert decision.admitted
                assert cluster.shard_of(flow) != "s1"
                assert cluster.rebalanced == 1

        run(scenario())

    def test_degraded_shard_used_only_without_healthy_alternative(self):
        async def scenario():
            cluster = make_cluster(n_shards=2)
            async with cluster:
                flow = next(
                    f for f in (f"probe-{i}" for i in range(10_000))
                    if cluster.ring.node_for(f) == "s0"
                )
                # s0 degraded (stale feed), s1 healthy: arrival avoids s0.
                for link in cluster.shards["s0"].gateway.links:
                    link.feed.pause()
                cluster.shards["s0"].gateway.tick(8.0)
                decision = await cluster.admit(flow, t=9.0)
                assert decision.admitted
                assert cluster.shard_of(flow) == "s1"
                # Now s1 quarantined too: the degraded shard is the only
                # shard still deciding, so it takes the arrival.
                quarantine(cluster.shards["s1"], 10.0)
                other = next(
                    f for f in (f"probe2-{i}" for i in range(10_000))
                    if cluster.ring.node_for(f) == "s1"
                )
                fallback = await cluster.admit(other, t=11.0)
                assert cluster.shard_of(other) in (None, "s0")
                return fallback

        run(scenario())

    def test_whole_cluster_quarantined_fails_closed(self):
        async def scenario():
            cluster = make_cluster(n_shards=2)
            async with cluster:
                for server in cluster.shards.values():
                    quarantine(server, 1.0)
                # Before the breaker's next half-open probe (t=2), every
                # shard is still failing closed.
                decision = await cluster.admit("flow-x", t=1.5)
                assert not decision.admitted
                assert decision.reason == "quarantined"
                assert cluster.shard_of("flow-x") is None

        run(scenario())

    def test_snapshot_and_prometheus_aggregate_all_shards(self):
        async def scenario():
            cluster = make_cluster()
            async with cluster:
                await cluster.admit_many(
                    [f"flow-{i}" for i in range(12)], t=1.0
                )
                snapshot = await cluster.snapshot()
                text = cluster.prometheus()
            return snapshot, text

        snapshot, text = run(scenario())
        assert set(snapshot["shards"]) == {"s0", "s1", "s2"}
        per_shard = sum(
            snap["counters"]["gateway.admits"]
            for snap in snapshot["shards"].values()
        )
        assert snapshot["totals"]["gateway.admits"] == per_shard
        for name in ("s0", "s1", "s2"):
            assert f"repro_{name}_gateway_admits" in text

    def test_snapshot_marks_dead_shard_unreachable(self):
        # Regression: a shard that died (or is draining) used to raise
        # out of snapshot(), taking the whole monitoring scrape down with
        # it; it must degrade to an "unreachable" marker instead.
        async def scenario():
            cluster = make_cluster()
            async with cluster:
                await cluster.admit_many(
                    [f"flow-{i}" for i in range(9)], t=1.0
                )
                await cluster.shards["s1"].stop()
                snapshot = await cluster.snapshot()
                text = cluster.prometheus()
            return snapshot, text

        snapshot, text = run(scenario())
        assert set(snapshot["shards"]) == {"s0", "s1", "s2"}
        assert "unreachable" in snapshot["shards"]["s1"]
        assert snapshot["unreachable"] == 1
        live = [
            snap for snap in snapshot["shards"].values()
            if "unreachable" not in snap
        ]
        assert len(live) == 2
        assert snapshot["totals"]["gateway.admits"] == sum(
            snap["counters"]["gateway.admits"] for snap in live
        )
        # The exposition still renders for every shard.
        for name in ("s0", "s2"):
            assert f"repro_{name}_gateway_admits" in text

    def test_unwrap_surfaces_error_frames(self):
        async def scenario():
            cluster = make_cluster(n_shards=1)
            async with cluster:
                await cluster.admit("flow-1", t=1.0)
                cluster._flows.pop("flow-1")  # lose the table entry
                cluster._flows["flow-1"] = "s0"  # re-add; depart twice below
                await cluster.depart("flow-1", t=2.0)
                cluster._flows["flow-1"] = "s0"  # stale entry -> remote error
                with pytest.raises(RemoteError) as exc:
                    await cluster.depart("flow-1", t=3.0)
                return exc.value.code

        assert run(scenario()) == "unknown-flow"
