"""Load-generator tests: determinism, accounting, parameter validation."""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import ParameterError
from repro.service.loadgen import run_loadgen, self_host_run
from repro.service.server import ServerConfig, replay_journal

from .conftest import make_gateway, run

WORKLOAD = dict(rate=5.0, holding_time=2.0, n_flows=300, seed=11)


def self_host(**overrides):
    kwargs = dict(WORKLOAD)
    kwargs.update(overrides)
    return run(
        self_host_run(
            lambda i: make_gateway(),
            collect_digest=True,
            **kwargs,
        )
    )


class TestValidation:
    def test_bad_parameters(self):
        async def call(**kwargs):
            defaults = dict(
                rate=1.0, holding_time=1.0, n_flows=10, fetch_digests=False
            )
            defaults.update(kwargs)
            await run_loadgen("127.0.0.1:1", **defaults)

        for kwargs in (
            {"rate": 0.0},
            {"holding_time": -1.0},
            {"n_flows": 0},
            {"concurrency": 0},
            {"batch_window": 0.0},
            {"pipeline": 0},
            {"wire_version": 3},
        ):
            with pytest.raises(ParameterError):
                run(call(**kwargs))
        with pytest.raises(ParameterError):
            run(run_loadgen([], rate=1.0, holding_time=1.0, n_flows=1))
        with pytest.raises(ParameterError):
            run(run_loadgen("not-an-address", rate=1.0, holding_time=1.0,
                            n_flows=1))


class TestAccounting:
    def test_counts_are_consistent(self):
        report, _servers = self_host()
        assert report.arrivals == WORKLOAD["n_flows"]
        assert (
            report.admitted + report.rejected + report.shed + report.errors
            == report.arrivals
        )
        assert report.decisions == report.admitted + report.rejected
        assert report.departures <= report.admitted
        assert report.errors == 0 and report.shed == 0
        assert report.requests == report.latency["count"]
        assert report.wall_seconds > 0.0
        assert report.decisions_per_sec > 0.0
        assert report.simulated_time > 0.0

    def test_batched_mode_coalesces_requests(self):
        single, _ = self_host()
        batched, _ = self_host(batch_window=0.5)
        assert batched.arrivals == single.arrivals
        # One frame per grid instant instead of one per event.
        assert batched.requests < single.requests

    def test_digest_deterministic_with_one_worker(self):
        first, _ = self_host(batch_window=0.25)
        second, _ = self_host(batch_window=0.25)
        assert list(first.digests.values()) == list(second.digests.values())
        assert None not in first.digests.values()

    def test_journal_replays_to_the_served_digest(self):
        report, servers = self_host(keep_journal=True)
        (server,) = servers
        fresh = make_gateway()
        assert replay_journal(fresh, server.journal) == server.digest()
        assert list(report.digests.values()) == [server.digest()]

    def test_multiple_shards_split_the_flows(self):
        report, servers = self_host(shards=3, n_flows=400)
        assert len(servers) == 3
        assert len(report.digests) == 3
        total = sum(server._decisions for server in servers)
        assert total == report.decisions
        # Consistent hashing spreads a 400-flow namespace over all shards.
        assert all(server._decisions > 0 for server in servers)

    def test_concurrent_workers_complete_the_workload(self):
        report, _servers = self_host(concurrency=4, n_flows=400)
        assert report.arrivals == 400
        assert report.errors == 0

    def test_pipelined_run_replays_to_the_served_digest(self):
        """Pipelining reorders wire-level completion, but the journal
        of whatever order the server actually served still replays to
        the served digest on a fresh twin."""
        report, servers = self_host(
            pipeline=16, keep_journal=True, n_flows=400
        )
        (server,) = servers
        assert report.errors == 0
        assert report.arrivals == 400
        fresh = make_gateway()
        assert replay_journal(fresh, server.journal) == server.digest()

    def test_pipelined_v1_pin_still_serves(self):
        report, servers = self_host(
            pipeline=8, wire_version=1, keep_journal=True
        )
        (server,) = servers
        assert report.errors == 0
        assert replay_journal(make_gateway(), server.journal) == server.digest()

    def test_connection_failures_are_reported_not_raised(self):
        # Regression: exhausted connection-level failures used to escape
        # the worker loop and abort the whole run with a traceback
        # instead of landing in the report's error count.
        async def scenario():
            # Bind-then-close guarantees a dead port.
            probe = await asyncio.start_server(
                lambda r, w: None, "127.0.0.1", 0
            )
            port = probe.sockets[0].getsockname()[1]
            probe.close()
            await probe.wait_closed()
            return await run_loadgen(
                f"127.0.0.1:{port}",
                rate=5.0,
                holding_time=2.0,
                n_flows=10,
                retries=0,
                timeout=0.5,
                fetch_digests=False,
            )

        report = run(scenario())
        assert report.arrivals == 10
        assert report.errors == 10
        assert report.admitted == report.rejected == report.departures == 0

    def test_shedding_is_reported_not_raised(self):
        report, _servers = self_host(
            server_config=ServerConfig(max_queue_depth=1),
            concurrency=8,
            n_flows=400,
            retries=0,
        )
        # With a one-deep queue and 8 workers, overload answers become
        # shed counts (admits *and* departs), never hard errors.
        assert report.errors == 0
        assert report.arrivals == 400
        assert report.admitted + report.rejected <= 400
        assert report.admitted + report.rejected + report.shed >= 400
