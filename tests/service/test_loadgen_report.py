"""Regression: a zero-success run must yield a serializable report.

A loadgen run where every wire call fails (dead address, no retries)
used to blow up twice: an empty latency histogram's NaN statistics
leaked into the report (rejected by strict-JSON consumers), and the
post-run digest fetch raised out of ``run_loadgen`` instead of
degrading.  The report must come back with ``errors == n_flows``,
``None`` for any unavailable latency statistic and ``None`` digests --
and survive ``json.dumps(..., allow_nan=False)``.
"""

from __future__ import annotations

import dataclasses
import json
import math

from repro.runtime.metrics import Histogram, json_safe
from repro.service.loadgen import run_loadgen

from .conftest import run

DEAD_ADDR = "127.0.0.1:1"  # reserved port: connection refused immediately


def test_empty_histogram_summary_degrades_to_none():
    # The exact contract the report relies on: no observations means
    # every statistic is None after json_safe, never NaN.
    summary = json_safe(Histogram("latency", buckets=(0.1, 1.0)).summary())
    assert summary["count"] == 0
    for key in ("min", "max", "mean", "p50", "p90", "p99"):
        assert summary[key] is None, (key, summary[key])
    json.dumps(summary, allow_nan=False)


class TestZeroSuccessReport:
    def test_dead_server_degrades_to_error_counts(self):
        report = run(run_loadgen(
            DEAD_ADDR,
            rate=50.0,
            holding_time=0.1,
            n_flows=5,
            timeout=0.2,
            retries=0,
            fetch_digests=True,
        ))
        assert report.arrivals == 5
        assert report.errors == 5
        assert report.admitted == report.rejected == report.departures == 0
        assert report.decisions == 0
        # Failed wire calls are still timed, but whatever the histogram
        # holds must be strict-JSON clean: finite or None, never NaN.
        for key, value in report.latency.items():
            assert value is None or (
                isinstance(value, (int, float)) and math.isfinite(value)
            ), (key, value)
        # The digest fetch failed but the report still carries the addr
        # (degraded to None) instead of raising out of the run.
        assert report.digests == {DEAD_ADDR: None}
        # Strict-JSON round-trip is the regression's acceptance check.
        payload = json.dumps(dataclasses.asdict(report), allow_nan=False)
        assert json.loads(payload)["errors"] == 5
