"""Wire-protocol tests: framing, validation and decision serialization."""

from __future__ import annotations

import asyncio
import math
import struct

import pytest

from repro.errors import ProtocolError
from repro.runtime.link import AdmissionDecision
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    OPS,
    PROTOCOL_VERSION,
    RETRYABLE_CODES,
    decision_from_wire,
    decision_to_wire,
    decode_frame,
    encode_frame,
    error_response,
    make_request,
    ok_response,
    read_frame,
    validate_request,
)

from .conftest import run


def reader_with(data: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return reader


class TestFraming:
    def test_round_trip(self):
        payload = {"v": 1, "id": 3, "op": "admit", "flow": "uniçode-✓"}
        frame = encode_frame(payload)
        length = struct.unpack("!I", frame[:4])[0]
        assert length == len(frame) - 4
        assert decode_frame(frame[4:]) == payload

    def test_decode_rejects_non_object(self):
        with pytest.raises(ProtocolError) as exc:
            decode_frame(b"[1, 2, 3]")
        assert exc.value.code == "bad-frame"

    def test_decode_rejects_bad_json(self):
        with pytest.raises(ProtocolError):
            decode_frame(b"{not json")
        with pytest.raises(ProtocolError):
            decode_frame(b"\xff\xfe")

    def test_encode_rejects_oversized_body(self):
        with pytest.raises(ProtocolError) as exc:
            encode_frame({"blob": "x" * MAX_FRAME_BYTES})
        assert exc.value.code == "bad-frame"

    def test_encode_rejects_nan(self):
        # Strict JSON only; decisions must go through decision_to_wire.
        with pytest.raises(ValueError):
            encode_frame({"target": math.nan})

    def test_read_frame_round_trip_and_clean_eof(self):
        async def scenario():
            a = encode_frame({"v": 1, "id": 0, "op": "ping"})
            b = encode_frame({"v": 1, "id": 1, "op": "ping"})
            reader = reader_with(a + b)
            first = await read_frame(reader)
            second = await read_frame(reader)
            third = await read_frame(reader)
            return first, second, third

        first, second, third = run(scenario())
        assert first["id"] == 0 and second["id"] == 1
        assert third is None  # clean EOF at a frame boundary

    def test_read_frame_truncated_header(self):
        async def scenario():
            await read_frame(reader_with(b"\x00\x00"))

        with pytest.raises(ProtocolError, match="mid-header"):
            run(scenario())

    def test_read_frame_truncated_body(self):
        async def scenario():
            frame = encode_frame({"v": 1, "id": 0, "op": "ping"})
            await read_frame(reader_with(frame[:-3]))

        with pytest.raises(ProtocolError, match="mid-frame"):
            run(scenario())

    def test_read_frame_rejects_oversized_length_prefix(self):
        async def scenario():
            header = struct.pack("!I", MAX_FRAME_BYTES + 1)
            await read_frame(reader_with(header))

        with pytest.raises(ProtocolError, match="exceeds"):
            run(scenario())

    def test_read_frame_honours_custom_limit(self):
        async def scenario():
            frame = encode_frame({"v": 1, "id": 0, "op": "ping"})
            await read_frame(reader_with(frame), max_bytes=4)

        with pytest.raises(ProtocolError, match="exceeds"):
            run(scenario())


class TestValidation:
    def good(self, **overrides):
        payload = make_request("admit", 1, flow="f1", t=2.0)
        payload.update(overrides)
        return payload

    def test_accepts_every_op(self):
        for op in OPS:
            payload = {"v": PROTOCOL_VERSION, "id": 1, "op": op}
            if op in ("admit", "depart"):
                payload["flow"] = "f1"
            elif op in ("admit_many", "depart_many"):
                payload["flows"] = ["f1", 2]
            elif op == "telemetry":
                payload.update(link="l0", t=1.0, bytes=1000)
            elif op == "journal-sync":
                payload.update(
                    shard="s0", seq=0, start=0,
                    entries=[["admit", "f1", 1.0]],
                )
            elif op == "migrate-out":
                payload["flows"] = ["f1", 2]
            elif op == "migrate-in":
                payload["flows"] = [["f1", 1.0], [2, 2.0]]
            elif op == "retarget":
                payload["alpha"] = 2.5
            assert validate_request(payload) is payload

    def test_rejects_wrong_version(self):
        with pytest.raises(ProtocolError) as exc:
            validate_request(self.good(v=99))
        assert exc.value.code == "bad-version"

    def test_rejects_missing_id(self):
        payload = self.good()
        del payload["id"]
        with pytest.raises(ProtocolError) as exc:
            validate_request(payload)
        assert exc.value.code == "bad-request"

    def test_rejects_unknown_op(self):
        with pytest.raises(ProtocolError) as exc:
            validate_request(self.good(op="explode"))
        assert exc.value.code == "unknown-op"

    def test_rejects_bad_time(self):
        for bad in ("soon", math.nan, math.inf):
            with pytest.raises(ProtocolError) as exc:
                validate_request(self.good(t=bad))
            assert exc.value.code == "bad-request"

    def test_rejects_missing_flow(self):
        payload = self.good()
        del payload["flow"]
        with pytest.raises(ProtocolError):
            validate_request(payload)

    def test_rejects_bad_flow_ids(self):
        for bad in (None, 1.5, True, ["nested"]):
            with pytest.raises(ProtocolError):
                validate_request(self.good(flow=bad))

    def test_rejects_empty_or_non_list_flows(self):
        base = {"v": PROTOCOL_VERSION, "id": 1, "op": "admit_many"}
        for bad in ([], "f1", None, [True]):
            with pytest.raises(ProtocolError):
                validate_request(dict(base, flows=bad))


class TestResponses:
    def test_ok_response_shape(self):
        response = ok_response(7, {"pong": True})
        assert response["ok"] and response["id"] == 7
        assert response["v"] == PROTOCOL_VERSION
        assert response["result"] == {"pong": True}

    def test_error_response_marks_retryable_codes(self):
        for code in RETRYABLE_CODES:
            assert error_response(1, code, "m")["error"]["retryable"]
        for code in ("bad-request", "unknown-flow", "state-error", "internal"):
            assert not error_response(1, code, "m")["error"]["retryable"]


class TestDecisionWire:
    def test_round_trip_preserves_fields(self):
        decision = AdmissionDecision(
            admitted=True,
            link="link1",
            reason="target",
            target=17.25,
            n_flows=9,
            degraded=True,
            health="degraded",
            mu_hat=1.01,
            sigma_hat=0.29,
        )
        wire = decision_to_wire(decision)
        assert decision_from_wire(wire) == decision
        # And the wire form is strict-JSON safe.
        encode_frame(wire)

    def test_nan_fields_travel_as_null(self):
        decision = AdmissionDecision(
            admitted=False, link="link0", reason="quarantined",
            target=math.nan, n_flows=0, degraded=True, health="quarantined",
        )
        wire = decision_to_wire(decision)
        assert wire["target"] is None
        assert wire["mu_hat"] is None and wire["sigma_hat"] is None
        back = decision_from_wire(wire)
        assert math.isnan(back.target) and math.isnan(back.mu_hat)
