"""Unit tests for the v2 binary codec.

Everything here goes through the public entry points --
``encode_request``/``encode_response`` (which pick binary vs JSON) and
``decode_frame_body`` (which dispatches on the magic byte) -- so the
round trips exercise exactly the bytes that cross the wire.
"""

from __future__ import annotations

import json
import math
import struct

import pytest

from repro.errors import ProtocolError
from repro.service.protocol import (
    MAX_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
    PROTOCOL_VERSION_2,
    V2_MAGIC,
    V2_OPS,
    decode_frame_body,
    encode_request,
    encode_request_v2,
    encode_response,
    encode_response_v2,
    error_response,
    make_request,
    ok_response,
)

_LENGTH = struct.Struct("!I")


def strip_prefix(frame: bytes) -> bytes:
    (length,) = _LENGTH.unpack(frame[:4])
    body = frame[4:]
    assert len(body) == length
    return body


def roundtrip_request(payload: dict) -> tuple[bytes, dict]:
    body = strip_prefix(encode_request(payload, PROTOCOL_VERSION_2))
    return body, decode_frame_body(body)


class TestRequestRoundTrip:
    def test_admit_str_flow(self):
        body, decoded = roundtrip_request(make_request("admit", 7, flow="f-1", t=1.5))
        assert body[0] == V2_MAGIC
        assert decoded == {"v": 2, "id": 7, "op": "admit", "t": 1.5, "flow": "f-1"}

    def test_admit_int_flow_and_no_t(self):
        _, decoded = roundtrip_request(make_request("admit", 1, flow=-42))
        assert decoded == {"v": 2, "id": 1, "op": "admit", "flow": -42}

    def test_admit_many_mixed_flows(self):
        flows = ["a", 5, "b" * 100, -(2**62)]
        _, decoded = roundtrip_request(
            make_request("admit_many", 2**63, flows=flows, t=0.25)
        )
        assert decoded["op"] == "admit_many"
        assert decoded["flows"] == flows
        assert decoded["id"] == 2**63

    def test_depart_and_depart_many(self):
        _, one = roundtrip_request(make_request("depart", 3, flow="f", t=9.0))
        _, many = roundtrip_request(make_request("depart_many", 4, flows=["f"]))
        assert one["op"] == "depart" and one["flow"] == "f"
        assert many["op"] == "depart_many" and many["flows"] == ["f"]

    def test_telemetry_with_and_without_flow(self):
        base = make_request(
            "telemetry", 5, link="link0", t=2.0, bytes=2**63, packets=12
        )
        _, decoded = roundtrip_request(base)
        assert decoded == {
            "v": 2, "id": 5, "op": "telemetry", "t": 2.0,
            "link": "link0", "bytes": 2**63, "packets": 12,
        }
        _, with_flow = roundtrip_request({**base, "flow": "stream-1"})
        assert with_flow["flow"] == "stream-1"

    def test_unicode_flow_ids_survive(self):
        _, decoded = roundtrip_request(
            make_request("admit", 6, flow="флоу-θ☃", t=1.0)
        )
        assert decoded["flow"] == "флоу-θ☃"


class TestRequestJsonFallback:
    def fallback(self, payload):
        body = strip_prefix(encode_request(payload, PROTOCOL_VERSION_2))
        assert body[:1] != bytes([V2_MAGIC])
        return json.loads(body.decode("utf-8"))

    def test_cold_ops_stay_json(self):
        for op in ("ping", "snapshot", "health"):
            assert op not in V2_OPS
            decoded = self.fallback(make_request(op, 1))
            assert decoded["op"] == op and decoded["v"] == PROTOCOL_VERSION

    def test_out_of_domain_fields_fall_back(self):
        for payload in (
            make_request("admit", 1, flow="x" * 0xFFFF, t=1.0),  # huge str
            make_request("admit", 1, flow=2**63, t=1.0),  # flow past i64
            make_request("admit", 2**64, flow="f", t=1.0),  # id past u64
            make_request("admit", -1, flow="f", t=1.0),  # negative id
            make_request("telemetry", 1, link="l", t=1.0, bytes=2**64),
            make_request("admit", 1, flow=1.5, t=1.0),  # float flow
        ):
            assert encode_request_v2(payload) is None
            decoded = self.fallback(payload)
            # The emitted "v" matches the JSON encoding actually used.
            assert decoded["v"] == PROTOCOL_VERSION

    def test_version_1_never_emits_binary(self):
        body = strip_prefix(
            encode_request(make_request("admit", 1, flow="f", t=1.0), 1)
        )
        assert body[:1] != bytes([V2_MAGIC])


class TestResponseRoundTrip:
    def roundtrip(self, payload: dict) -> dict:
        body = strip_prefix(encode_response(payload, PROTOCOL_VERSION_2))
        assert body[0] == V2_MAGIC
        return decode_frame_body(body)

    def decision(self, **overrides):
        decision = {
            "admitted": True, "link": "link1", "reason": None,
            "target": 12.5, "n_flows": 3, "degraded": False,
            "health": "healthy", "mu_hat": 1.25, "sigma_hat": 0.5,
        }
        decision.update(overrides)
        return decision

    def test_single_decision(self):
        frame = ok_response(9, {"t": 1.0, "decision": self.decision()})
        decoded = self.roundtrip(frame)
        assert decoded["ok"] and decoded["id"] == 9
        assert decoded["max_v"] == MAX_PROTOCOL_VERSION
        assert decoded["result"]["decision"] == self.decision()

    def test_none_fields_travel_as_nan_and_back(self):
        decision = self.decision(
            admitted=False, reason="quarantined", target=None,
            mu_hat=None, sigma_hat=None, health="quarantined",
        )
        frame = ok_response(1, {"t": 2.0, "decision": decision})
        assert self.roundtrip(frame)["result"]["decision"] == decision

    def test_decision_list(self):
        decisions = [self.decision(), self.decision(admitted=False, reason="full")]
        frame = ok_response(2, {"t": 3.0, "decisions": decisions})
        assert self.roundtrip(frame)["result"]["decisions"] == decisions

    def test_depart_and_departed_and_telemetry(self):
        assert self.roundtrip(ok_response(3, {"t": 1.0, "link": "l0"}))[
            "result"] == {"t": 1.0, "link": "l0"}
        assert self.roundtrip(ok_response(4, {"t": 1.0, "departed": 7}))[
            "result"] == {"t": 1.0, "departed": 7}
        assert self.roundtrip(
            ok_response(5, {"t": 1.0, "link": "l0", "buffered": 2})
        )["result"] == {"t": 1.0, "link": "l0", "buffered": 2}

    def test_error_frame_keeps_code_and_retryable(self):
        decoded = self.roundtrip(error_response(6, "overloaded", "queue full"))
        assert not decoded["ok"]
        assert decoded["error"]["code"] == "overloaded"
        assert decoded["error"]["retryable"] is True
        hard = self.roundtrip(error_response(None, "state-error", "dup"))
        assert hard["id"] is None and hard["error"]["retryable"] is False

    def test_shapes_without_binary_form_fall_back_to_json(self):
        # A snapshot result has no v2 kind; a non-numeric t can't pack.
        for frame in (
            ok_response(1, {"service": {"decisions": 3}}),
            ok_response(1, {"t": "one", "departed": 1}),
        ):
            assert encode_response_v2(frame) is None
            body = strip_prefix(encode_response(frame, PROTOCOL_VERSION_2))
            assert body[:1] != bytes([V2_MAGIC])
            assert decode_frame_body(body)["ok"]

    def test_version_1_request_always_answered_in_json(self):
        frame = ok_response(1, {"t": 1.0, "departed": 1})
        body = strip_prefix(encode_response(frame, 1))
        assert body[:1] != bytes([V2_MAGIC])


class TestMalformedFrames:
    def good_body(self) -> bytes:
        return strip_prefix(
            encode_request(
                make_request("admit_many", 1, flows=["ab", 3], t=1.0),
                PROTOCOL_VERSION_2,
            )
        )

    def test_unknown_version_byte_is_bad_version(self):
        body = bytearray(self.good_body())
        body[1] = 3  # claims binary v3
        with pytest.raises(ProtocolError) as exc:
            decode_frame_body(bytes(body))
        assert exc.value.code == "bad-version"

    def test_unknown_kind_is_bad_frame(self):
        body = bytearray(self.good_body())
        body[2] = 0x7F
        with pytest.raises(ProtocolError) as exc:
            decode_frame_body(bytes(body))
        assert exc.value.code == "bad-frame"

    def test_every_truncation_point_is_a_typed_error(self):
        body = self.good_body()
        for cut in range(len(body)):
            if cut == 0:
                continue  # empty body dispatches to the JSON decoder
            with pytest.raises(ProtocolError) as exc:
                decode_frame_body(body[:cut])
            assert exc.value.code == "bad-frame"

    def test_decision_response_truncations(self):
        frame = ok_response(1, {"t": 1.0, "decision": {
            "admitted": True, "link": "link0", "reason": None,
            "target": 1.0, "n_flows": 1, "degraded": False,
            "health": "healthy", "mu_hat": math.pi, "sigma_hat": 0.1,
        }})
        body = strip_prefix(encode_response(frame, PROTOCOL_VERSION_2))
        for cut in range(1, len(body)):
            with pytest.raises(ProtocolError):
                decode_frame_body(body[:cut])

    def test_bad_flow_tag_and_bad_utf8(self):
        body = self.good_body()
        # The first flow tag byte sits right after header+id+t+count.
        tag_at = 4 + 8 + 8 + 4
        assert body[tag_at] == 0x00
        mutated = body[:tag_at] + b"\x07" + body[tag_at + 1:]
        with pytest.raises(ProtocolError) as exc:
            decode_frame_body(mutated)
        assert exc.value.code == "bad-frame"
        # Corrupt the "ab" flow id payload into invalid utf-8.
        str_at = tag_at + 1 + 2
        assert body[str_at:str_at + 2] == b"ab"
        mutated = body[:str_at] + b"\xff\xfe" + body[str_at + 2:]
        with pytest.raises(ProtocolError) as exc:
            decode_frame_body(mutated)
        assert exc.value.code == "bad-frame"
