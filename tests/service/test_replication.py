"""Replication-plane tests: bounded journals, journal-sync shipping,
standby followers, failover promotion, two-phase migration, and the
multi-process cluster supervisor."""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import ParameterError, RemoteError
from repro.runtime.faults import FaultPlan, FeedFaults
from repro.service.protocol import JOURNAL_OPS, make_request
from repro.service.replication import (
    GatewaySpec,
    ProcessCluster,
    process_fault_schedule,
)
from repro.service.server import AdmissionServer, replay_journal

from .conftest import run

SPEC = GatewaySpec(kind="trace", links=2, capacity=20.0)


def make_server(**kwargs) -> AdmissionServer:
    defaults = dict(
        collect_digest=True,
        keep_journal=True,
        gateway_factory=SPEC.build,
    )
    defaults.update(kwargs)
    return AdmissionServer(SPEC.build(), **defaults)


def req(op, request_id, **fields):
    return make_request(op, request_id, **fields)


async def drive(server, n, *, t0=0.0, depart_every=3, rid=0):
    """Admit ``n`` flows (departing every ``depart_every``-th) via submit."""
    t = t0
    for i in range(n):
        t += 0.05
        flow = f"f{rid}-{i}"
        response = await server.submit(req("admit", rid * 100000 + i, flow=flow, t=t))
        assert response["ok"], response
        if depart_every and i % depart_every == depart_every - 1:
            t += 0.01
            await server.submit(
                req("depart", rid * 100000 + 50000 + i, flow=flow, t=t)
            )
    return t


class TestGatewaySpec:
    def test_rejects_bad_specs(self):
        with pytest.raises(ParameterError):
            GatewaySpec(kind="nope")
        with pytest.raises(ParameterError):
            GatewaySpec(links=0)
        with pytest.raises(ParameterError):
            GatewaySpec(capacity=0.0)

    def test_twins_decide_identically(self):
        async def scenario():
            a = make_server(name="a")
            b = make_server(name="b")
            await a.start_dispatcher()
            await b.start_dispatcher()
            try:
                await drive(a, 40)
                await drive(b, 40)
                return a.digest(), b.digest()
            finally:
                await a.stop()
                await b.stop()

        left, right = run(scenario())
        assert left is not None and left == right

    def test_with_seed_is_pure(self):
        spec = GatewaySpec(kind="rcbr", seed=3)
        assert spec.with_seed(7).seed == 7
        assert spec.seed == 3


class TestJournalBounding:
    def test_validation(self):
        with pytest.raises(ParameterError):
            AdmissionServer(SPEC.build(), journal_max_entries=64)
        with pytest.raises(ParameterError):
            AdmissionServer(
                SPEC.build(), keep_journal=True, journal_max_entries=0,
                gateway_factory=SPEC.build,
            )
        with pytest.raises(ParameterError):
            AdmissionServer(SPEC.build(), standby=True)

    def test_long_run_holds_journal_flat(self):
        """The satellite regression: a run far longer than the bound keeps
        the in-memory journal at the bound while the checkpoint keeps the
        *full* decision history replayable to the served digest."""

        async def scenario():
            server = make_server(name="bounded", journal_max_entries=64)
            await server.start_dispatcher()
            try:
                await drive(server, 400)
                return (
                    len(server.journal),
                    server.journal_start,
                    server.journal_end(),
                    server.digest(),
                    server.replay_from_checkpoint(),
                )
            finally:
                await server.stop()

        kept, start, end, served, replayed = run(scenario())
        assert kept <= 64
        assert start > 0 and start + kept == end
        assert served == replayed

    def test_retain_floor_blocks_truncation(self):
        async def scenario():
            server = make_server(name="floored", journal_max_entries=16)
            server.retain_floor = 0  # an attached follower has acked nothing
            await server.start_dispatcher()
            try:
                await drive(server, 100, depart_every=0)
                floored_len = len(server.journal)
                server.retain_floor = server.journal_end()  # all acked
                await drive(server, 30, depart_every=0, rid=1)
                acked_len = len(server.journal)
                server.retain_floor = None  # follower detached
                await drive(server, 1, depart_every=0, rid=2)
                return floored_len, acked_len, len(server.journal)
            finally:
                await server.stop()

        floored_len, acked_len, detached_len = run(scenario())
        assert floored_len == 100  # nothing truncated while unshipped
        assert acked_len == 30  # only the unacked tail survives truncation
        assert detached_len <= 16  # full bound once no follower holds a floor


class TestStandby:
    def test_refuses_data_ops(self):
        async def scenario():
            follower = make_server(name="fol", standby=True)
            await follower.start_dispatcher()
            try:
                out = {}
                for op, fields in (
                    ("admit", {"flow": "f1"}),
                    ("depart", {"flow": "f1"}),
                    ("admit_many", {"flows": ["a"]}),
                    ("migrate-out", {"flows": ["a"]}),
                    ("migrate-in", {"flows": [["a", 1.0]]}),
                ):
                    response = await follower.submit(req(op, 1, **fields))
                    out[op] = response["error"]
                health = await follower.submit(req("health", 9))
                return out, health["result"]["standby"]
            finally:
                await follower.stop()

        errors, standby = run(scenario())
        assert standby is True
        for op, error in errors.items():
            assert error["code"] == "state-error", (op, error)
            assert "standby" in error["message"]

    def test_journal_sync_refused_on_active_server(self):
        async def scenario():
            server = make_server(name="active")
            await server.start_dispatcher()
            try:
                return (await server.submit(req(
                    "journal-sync", 1, shard="x", seq=0, start=0, entries=[],
                )))["error"]
            finally:
                await server.stop()

        error = run(scenario())
        assert error["code"] == "state-error"


class TestJournalSync:
    async def _sync(self, follower, leader, synced, *, rid, limit=512):
        entries, digest = leader.journal_segment(synced, limit)
        response = await follower.submit(req(
            "journal-sync", rid, shard=leader.name, seq=rid,
            start=synced, entries=[list(e) for e in entries], digest=digest,
        ))
        return response

    def test_follower_reconstructs_leader_digest(self):
        async def scenario():
            leader = make_server(name="lead")
            follower = make_server(name="fol", standby=True)
            await leader.start_dispatcher()
            await follower.start_dispatcher()
            try:
                await drive(leader, 60)
                synced, rid = 0, 0
                while synced < leader.journal_end():
                    response = await self._sync(
                        follower, leader, synced, rid=rid, limit=17
                    )
                    assert response["ok"], response
                    synced = response["result"]["total"]
                    rid += 1
                final = response["result"]
                return final, leader.digest(), follower.digest()
            finally:
                await leader.stop()
                await follower.stop()

        final, leader_digest, follower_digest = run(scenario())
        assert final["digest_ok"] is True
        assert final["digest"] == leader_digest == follower_digest

    def test_gap_detected_and_names_expected_offset(self):
        async def scenario():
            leader = make_server(name="lead")
            follower = make_server(name="fol", standby=True)
            await leader.start_dispatcher()
            await follower.start_dispatcher()
            try:
                await drive(leader, 10, depart_every=0)
                entries, digest = leader.journal_segment(5, 512)
                response = await follower.submit(req(
                    "journal-sync", 1, shard="lead", seq=0, start=5,
                    entries=[list(e) for e in entries], digest=digest,
                ))
                return response["error"]
            finally:
                await leader.stop()
                await follower.stop()

        error = run(scenario())
        assert error["code"] == "state-error"
        assert "expects 0" in error["message"]

    def test_overlap_is_skipped_idempotently(self):
        async def scenario():
            leader = make_server(name="lead")
            follower = make_server(name="fol", standby=True)
            await leader.start_dispatcher()
            await follower.start_dispatcher()
            try:
                await drive(leader, 10, depart_every=0)
                first = await self._sync(follower, leader, 0, rid=1)
                again = await self._sync(follower, leader, 0, rid=2)
                return first["result"], again["result"], follower.digest()
            finally:
                await leader.stop()
                await follower.stop()

        first, again, digest = run(scenario())
        assert first["applied"] == first["total"] == 10
        assert again["applied"] == 0 and again["total"] == 10
        assert again["digest_ok"] is True and again["digest"] == digest

    def test_divergence_is_fatal(self):
        async def scenario():
            leader = make_server(name="lead")
            follower = make_server(name="fol", standby=True)
            await leader.start_dispatcher()
            await follower.start_dispatcher()
            try:
                await drive(leader, 6, depart_every=0)
                entries, _ = leader.journal_segment(0, 512)
                response = await follower.submit(req(
                    "journal-sync", 1, shard="lead", seq=0, start=0,
                    entries=[list(e) for e in entries],
                    digest="0" * 64,
                ))
                return response["error"]
            finally:
                await leader.stop()
                await follower.stop()

        error = run(scenario())
        assert error["code"] == "state-error"
        assert "diverged" in error["message"]


class TestPromotion:
    def test_promote_verifies_replay_and_repairs(self):
        async def scenario():
            leader = make_server(name="lead")
            follower = make_server(name="fol", standby=True)
            await leader.start_dispatcher()
            await follower.start_dispatcher()
            try:
                t = await drive(leader, 30)
                # Ship everything, then admit two more the follower will
                # never see -- the "dead leader's unshipped tail".
                entries, digest = leader.journal_segment(0, 4096)
                await follower.submit(req(
                    "journal-sync", 1, shard="lead", seq=0, start=0,
                    entries=[list(e) for e in entries], digest=digest,
                ))
                extra = []
                for i in range(2):
                    t += 0.05
                    flow = f"late-{i}"
                    response = await leader.submit(req(
                        "admit", 100 + i, flow=flow, t=t,
                    ))
                    if response["result"]["decision"]["admitted"]:
                        extra.append([flow, response["result"]["t"]])
                # The supervisor's table: everything the leader carries.
                table = [
                    [flow, 0.0]
                    for flow in leader.gateway.active_flows()
                ]
                response = await follower.submit(req(
                    "promote", 2, flows=table, t=t,
                ))
                assert response["ok"], response
                result = response["result"]
                health = await follower.submit(req("health", 3))
                return result, len(extra), health["result"]["standby"]
            finally:
                await leader.stop()
                await follower.stop()

        result, n_extra, standby = run(scenario())
        assert result["promoted"] is True
        assert result["verified"] is True
        assert result["repaired_in"] == n_extra
        assert result["repaired_out"] == 0
        assert standby is False

    def test_promote_refused_when_already_active(self):
        async def scenario():
            server = make_server(name="lead")
            await server.start_dispatcher()
            try:
                return (await server.submit(req("promote", 1)))["error"]
            finally:
                await server.stop()

        assert run(scenario())["code"] == "state-error"


class TestTwoPhaseMigration:
    def test_migrated_flows_replay_on_both_shards(self):
        """migrate-out journals the departure, migrate-in the placement
        with the original admission time; both journals replay to their
        served digests on fresh twins (nothing lost, nothing doubled)."""

        async def scenario():
            a = make_server(name="a")
            b = make_server(name="b")
            await a.start_dispatcher()
            await b.start_dispatcher()
            try:
                t = await drive(a, 20)
                moving = a.gateway.active_flows()[:5]
                t += 1.0
                out = await a.submit(req(
                    "migrate-out", 1, flows=list(moving), t=t,
                ))
                assert out["ok"], out
                pairs = [[flow, 0.5] for flow in moving]
                incoming = await b.submit(req(
                    "migrate-in", 2, flows=pairs, t=t,
                ))
                assert incoming["ok"], incoming
                # Second migrate-in of the same flows must refuse rather
                # than double-place.
                doubled = await b.submit(req("migrate-in", 3, flows=pairs, t=t))
                return (
                    out["result"]["departed"],
                    incoming["result"]["installed"],
                    doubled["error"],
                    a.digest(), replay_journal(SPEC.build(), a.journal),
                    b.digest(), replay_journal(SPEC.build(), b.journal),
                    set(moving) <= set(b.gateway.active_flows()),
                    set(moving) & set(a.gateway.active_flows()),
                )
            finally:
                await a.stop()
                await b.stop()

        (departed, installed, doubled, a_digest, a_replayed,
         b_digest, b_replayed, on_b, still_on_a) = run(scenario())
        assert departed == installed == 5
        assert doubled["code"] == "state-error"
        assert "double-admit" in doubled["message"]
        assert a_digest == a_replayed
        assert b_digest == b_replayed
        assert on_b and not still_on_a


class TestProcessFaultSchedule:
    def test_extracts_sorted_process_events(self):
        plan = FaultPlan(links={
            "s1": FeedFaults(shard_crash=[[4.0, 1.0]]),
            "s0": FeedFaults(
                shard_restart=[[2.0, 1.0]], shard_crash=[[9.0, 1.0]]
            ),
        })
        assert process_fault_schedule(plan) == [
            (2.0, "shard_restart", "s0"),
            (4.0, "shard_crash", "s1"),
            (9.0, "shard_crash", "s0"),
        ]


@pytest.mark.slow
class TestProcessCluster:
    def test_validation(self):
        with pytest.raises(ParameterError):
            ProcessCluster(SPEC, shards=0)
        with pytest.raises(ParameterError):
            ProcessCluster(SPEC, replicas=2)

    def test_sigkill_failover_under_load(self):
        """The acceptance test: a 3-shard multi-process cluster survives
        SIGKILL of a leader mid-run; the follower's replayed digest
        verifies, and cluster-wide reconciliation shows zero lost and
        zero double-admitted decisions."""

        async def scenario():
            async with ProcessCluster(
                SPEC, shards=3, replicas=1, journal_max_entries=256,
            ) as cluster:
                t = 0.0
                for i in range(90):
                    t += 0.05
                    await cluster.admit(f"f{i}", t)
                before = await cluster.reconcile()
                victim = cluster.ring.node_for("f0")
                await asyncio.sleep(0.3)  # let the pump drain
                cluster.kill_shard(victim)
                for i in range(90, 140):
                    t += 0.05
                    await cluster.admit(f"f{i}", t)
                for flow in list(cluster.flows)[:10]:
                    t += 0.01
                    await cluster.depart(flow, t)
                after = await cluster.reconcile()
                return before, after, cluster.failovers, list(cluster.events)

        before, after, failovers, events = run(scenario())
        assert before["ok"], before
        assert failovers == 1
        assert after["ok"], after
        assert after["lost"] == [] and after["double_admitted"] == []
        promoted = [e for e in events if e["event"] == "promoted"]
        assert len(promoted) == 1 and promoted[0]["verified"] is True
        assert promoted[0]["digest"] is not None

    def test_ring_resize_migrates_with_reconciliation(self):
        async def scenario():
            async with ProcessCluster(
                SPEC, shards=2, replicas=0,
            ) as cluster:
                t = 0.0
                for i in range(60):
                    t += 0.05
                    await cluster.admit(f"f{i}", t)
                added = await cluster.add_shard("s9")
                mid = await cluster.reconcile()
                removed = await cluster.remove_shard("s9")
                final = await cluster.reconcile()
                return added, mid, removed, final, cluster.migrated

        added, mid, removed, final, migrated = run(scenario())
        assert added > 0  # ~1/3 of flows remap onto the new shard
        assert mid["ok"], mid
        assert removed == added  # everything it gained moves back off
        assert final["ok"], final
        assert migrated == added + removed


class TestClusterLoadgen:
    def test_hooked_kill_inside_workload(self):
        from repro.service.loadgen import run_cluster_loadgen

        async def scenario():
            async with ProcessCluster(
                SPEC, shards=2, replicas=1, journal_max_entries=128,
            ) as cluster:
                fired = []
                hooks = [
                    (1.5, lambda: (
                        fired.append(True),
                        cluster.kill_shard(cluster.shards[0]),
                    )),
                ]
                report = await run_cluster_loadgen(
                    cluster,
                    rate=20.0,
                    holding_time=2.0,
                    n_flows=120,
                    seed=7,
                    hooks=hooks,
                )
                await cluster.heal()
                reconcile = await cluster.reconcile()
                return report, reconcile, fired, cluster.failovers

        report, reconcile, fired, failovers = run(scenario())
        assert fired == [True]
        assert report.arrivals == 120
        assert report.errors == 0
        assert failovers == 1
        assert reconcile["ok"], reconcile


def test_journal_ops_cover_migration():
    assert "migrate_out" in JOURNAL_OPS and "migrate_in" in JOURNAL_OPS


def test_remote_error_has_retryable_promotion_path():
    # The supervisor retries a shard call after promoting; make sure the
    # client surfaces the shutting-down code it keys on.
    exc = RemoteError("shutting-down", "draining", retryable=True)
    assert exc.code == "shutting-down"
