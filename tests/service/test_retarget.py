"""The journaled ``retarget`` op: validation, wire codec, replay, refusal.

Online re-inversion installs a new certainty-equivalent parameter on
live gateways.  No admission decision is made at install time, but the
swap changes every *subsequent* decision's target -- so the op must be
journaled in sequence and reproduce exactly under ``replay_journal``,
follower journal-sync and checkpoint truncation (all three share one
apply loop).
"""

from __future__ import annotations

import pytest

from repro.core.controllers import CertaintyEquivalentController
from repro.core.estimators import BandwidthEstimate
from repro.errors import ParameterError, ProtocolError
from repro.runtime.link import _ALPHA_FLOOR
from repro.service.protocol import (
    JOURNAL_OPS,
    OPS,
    decode_frame_body,
    encode_request_v2,
    make_request,
    validate_request,
)
from repro.service.server import replay_journal

from .conftest import make_gateway, run
from .test_replication import SPEC, drive, make_server, req


class TestValidateRequest:
    def test_accepts_all_links_and_single_link_forms(self):
        assert "retarget" in OPS and "retarget" in JOURNAL_OPS
        for fields in (
            dict(alpha=2.5, t=1.0),
            dict(alpha=2.5, link="l0", t=1.0),
            dict(alpha=0.25),
        ):
            payload = make_request("retarget", 7, **fields)
            assert validate_request(payload) is payload

    @pytest.mark.parametrize("fields", [
        dict(),  # alpha missing
        dict(alpha=0.0),
        dict(alpha=-1.5),
        dict(alpha=float("nan")),
        dict(alpha=float("inf")),
        dict(alpha=True),
        dict(alpha="2.5"),
        dict(alpha=2.5, link=""),
        dict(alpha=2.5, link=7),
    ])
    def test_rejects_malformed(self, fields):
        with pytest.raises(ProtocolError) as exc:
            validate_request(make_request("retarget", 7, **fields))
        assert exc.value.code == "bad-request"


class TestV2JournalCodec:
    def test_retarget_entries_roundtrip_in_journal_sync(self):
        entries = [
            ["admit", "f1", 1.0],
            ["retarget", [2.2713, None], 1.5],  # all-links form
            ["retarget", [35.0, "l1"], 2.0],
            ["depart", "f1", 2.5],
        ]
        payload = make_request(
            "journal-sync", 9, shard="s0", seq=4, start=0,
            digest="ab" * 32, entries=entries,
        )
        body = encode_request_v2(payload)
        assert body is not None, "journal-sync with retarget must stay binary"
        decoded = decode_frame_body(body)
        assert decoded["op"] == "journal-sync"
        assert decoded["entries"] == entries

    def test_malformed_retarget_entry_falls_back_to_json(self):
        for bad in ([2.5], [True, None], [2.5, 7], "nope"):
            payload = make_request(
                "journal-sync", 9, shard="s0", seq=1, start=0,
                digest=None, entries=[["retarget", bad, 1.0]],
            )
            assert encode_request_v2(payload) is None


class TestManagedLinkRetarget:
    def test_swaps_controller_and_changes_the_target(self):
        gateway = make_gateway(n_links=1)
        link = gateway.links[0]
        gateway.tick(1.0)
        before = link.controller.criterion
        link.retarget(3.0)
        after = link.controller.criterion
        assert after.alpha == 3.0
        # More conservative parameter, strictly smaller admissible region.
        assert after.alpha > before.alpha
        estimate = BandwidthEstimate(mu=1.0, sigma=0.3, n=6)
        assert (
            link.controller.target_count(estimate, 0)
            < CertaintyEquivalentController(link.capacity, 0.05)
            .target_count(estimate, 0)
        )

    def test_caps_at_the_representable_floor(self):
        gateway = make_gateway(n_links=1)
        link = gateway.links[0]
        link.retarget(1e6)
        assert link.controller.criterion.alpha == _ALPHA_FLOOR

    def test_preserves_min_sigma(self):
        gateway = make_gateway(n_links=1)
        link = gateway.links[0]
        link.controller = CertaintyEquivalentController(
            link.capacity, alpha=1.0, min_sigma=0.25
        )
        link.retarget(2.0)
        assert link.controller.min_sigma == 0.25

    @pytest.mark.parametrize("alpha", [0.0, -1.0, float("nan"), float("inf")])
    def test_validation(self, alpha):
        gateway = make_gateway(n_links=1)
        with pytest.raises(ParameterError):
            gateway.links[0].retarget(alpha)


class TestGatewayRetarget:
    def test_all_links_or_one(self):
        gateway = make_gateway(n_links=2)
        assert gateway.retarget(2.0) == ["link0", "link1"]
        assert all(
            link.controller.criterion.alpha == 2.0 for link in gateway.links
        )
        assert gateway.retarget(3.0, link="link1") == ["link1"]
        assert gateway.link("link0").controller.criterion.alpha == 2.0
        assert gateway.link("link1").controller.criterion.alpha == 3.0

    def test_unknown_link_raises(self):
        gateway = make_gateway(n_links=1)
        with pytest.raises(ParameterError):
            gateway.retarget(2.0, link="ghost")


class TestServerRetarget:
    def test_journaled_and_replays_to_the_served_digest(self):
        """A mid-sequence retarget changes every later decision's target,
        so the digest is only reproducible if replay re-applies the op in
        exactly the same position -- the property followers and
        checkpoint rebuilds rely on."""

        async def scenario():
            server = make_server(name="rt")
            await server.start_dispatcher()
            try:
                t = await drive(server, 30)
                response = await server.submit(
                    req("retarget", 900000, alpha=3.0, t=t + 0.01)
                )
                assert response["ok"], response
                assert response["result"]["links"] == ["link0", "link1"]
                await drive(server, 30, t0=t + 0.02, rid=1)
                return server.digest(), list(server.journal)
            finally:
                await server.stop()

        digest, journal = run(scenario())
        retargets = [entry for entry in journal if entry[0] == "retarget"]
        assert len(retargets) == 1
        assert retargets[0][1] == [3.0, None]
        fresh = SPEC.build()
        assert replay_journal(fresh, journal) == digest
        # The install itself survives replay, not just the decisions.
        assert all(
            link.controller.criterion.alpha == 3.0 for link in fresh.links
        )

    def test_retarget_makes_later_decisions_stricter(self):
        async def scenario():
            plain = make_server(name="plain")
            strict = make_server(name="strict")
            await plain.start_dispatcher()
            await strict.start_dispatcher()
            try:
                await strict.submit(
                    req("retarget", 1, alpha=6.0, t=0.01)
                )
                admitted = {}
                for name, server in (("plain", plain), ("strict", strict)):
                    t, count = 0.02, 0
                    for i in range(60):
                        t += 0.05
                        response = await server.submit(
                            req("admit", 10 + i, flow=f"f{i}", t=t)
                        )
                        count += response["result"]["decision"]["admitted"]
                    admitted[name] = count
                return admitted
            finally:
                await plain.stop()
                await strict.stop()

        admitted = run(scenario())
        assert admitted["strict"] < admitted["plain"]

    def test_standby_refuses_until_promotion(self):
        async def scenario():
            follower = make_server(name="fol", standby=True)
            await follower.start_dispatcher()
            try:
                return await follower.submit(
                    req("retarget", 5, alpha=2.0, t=1.0)
                )
            finally:
                await follower.stop()

        response = run(scenario())
        assert not response["ok"]
        assert response["error"]["code"] == "state-error"
        assert "standby" in response["error"]["message"]
