"""AdmissionServer tests: dispatch, shedding, timeouts, TCP handling."""

from __future__ import annotations

import asyncio
import io

import pytest

from repro.errors import ParameterError
from repro.runtime.health import LinkHealth
from repro.runtime.observability import MetricsJsonlWriter
from repro.service.protocol import (
    encode_frame,
    make_request,
    read_frame,
    write_frame,
)
from repro.service.server import (
    AdmissionServer,
    ServerConfig,
    digest_record,
    replay_journal,
    shard_health,
)

from .conftest import make_gateway, run


def request(op, request_id, **fields):
    return make_request(op, request_id, **fields)


class TestServerConfig:
    def test_validation(self):
        for kwargs in (
            {"max_connections": 0},
            {"max_queue_depth": 0},
            {"request_timeout": 0.0},
            {"max_frame_bytes": 0},
            {"max_coalesce": 0},
        ):
            with pytest.raises(ParameterError):
                ServerConfig(**kwargs)


class TestDispatch:
    def test_admit_depart_round_trip(self):
        async def scenario():
            server = AdmissionServer(make_gateway())
            await server.start_dispatcher()
            try:
                admit = await server.submit(request("admit", 0, flow="f1", t=1.0))
                assert admit["ok"]
                assert admit["result"]["decision"]["admitted"]
                depart = await server.submit(request("depart", 1, flow="f1", t=2.0))
                assert depart["ok"]
                assert depart["result"]["link"].startswith("link")
                return server.gateway.n_flows
            finally:
                await server.stop()

        assert run(scenario()) == 0

    def test_clock_clamped_monotone(self):
        async def scenario():
            server = AdmissionServer(make_gateway())
            await server.start_dispatcher()
            try:
                first = await server.submit(request("admit", 0, flow="a", t=5.0))
                # A client clock running behind is clamped, not rejected.
                second = await server.submit(request("admit", 1, flow="b", t=3.0))
                return first["result"]["t"], second["result"]["t"], server.clock
            finally:
                await server.stop()

        t_first, t_second, clock = run(scenario())
        assert t_first == 5.0 and t_second == 5.0 and clock == 5.0

    def test_error_mapping(self):
        async def scenario():
            server = AdmissionServer(make_gateway())
            await server.start_dispatcher()
            try:
                await server.submit(request("admit", 0, flow="f1", t=1.0))
                duplicate = await server.submit(request("admit", 1, flow="f1"))
                unknown = await server.submit(request("depart", 2, flow="ghost"))
                bad = await server.submit({"v": 1, "id": 3, "op": "explode"})
                stale_version = await server.submit(
                    {"v": 99, "id": 4, "op": "ping"}
                )
                return duplicate, unknown, bad, stale_version
            finally:
                await server.stop()

        duplicate, unknown, bad, stale_version = run(scenario())
        assert duplicate["error"]["code"] == "state-error"
        assert unknown["error"]["code"] == "unknown-flow"
        assert bad["error"]["code"] == "unknown-op"
        assert stale_version["error"]["code"] == "bad-version"
        for response in (duplicate, unknown, bad, stale_version):
            assert not response["error"]["retryable"]

    def test_snapshot_health_ping(self):
        async def scenario():
            server = AdmissionServer(
                make_gateway(), name="s1", collect_digest=True
            )
            await server.start_dispatcher()
            try:
                await server.submit(request("admit", 0, flow="f1", t=1.0))
                snapshot = await server.submit(request("snapshot", 1))
                health = await server.submit(request("health", 2))
                ping = await server.submit(request("ping", 3))
                return snapshot["result"], health["result"], ping["result"]
            finally:
                await server.stop()

        snapshot, health, ping = run(scenario())
        assert snapshot["service"]["name"] == "s1"
        assert snapshot["service"]["decisions"] == 1
        assert snapshot["service"]["decision_digest"] is not None
        assert health["health"] == "healthy" and health["n_flows"] == 1
        assert ping["pong"] and ping["version"] == 1

    def test_shed_when_queue_full_fails_closed(self):
        async def scenario():
            server = AdmissionServer(
                make_gateway(),
                config=ServerConfig(max_queue_depth=1, request_timeout=0.05),
            )
            await server.start_dispatcher()
            # Pause the single writer so the queue can only fill up.
            server._dispatcher.cancel()
            try:
                await server._dispatcher
            except asyncio.CancelledError:
                pass
            waiting = asyncio.ensure_future(
                server.submit(request("admit", 0, flow="a", t=1.0))
            )
            await asyncio.sleep(0)  # let it enqueue
            shed = await server.submit(request("admit", 1, flow="b", t=1.0))
            timed_out = await waiting
            # Nothing was ever applied: the abandoned request must not be
            # decided by a later dispatcher either.
            drain = asyncio.ensure_future(server._dispatch_loop())
            await server._queue.join()
            drain.cancel()
            server._dispatcher = None  # stopped above; skip double-join
            server._queue = None
            await server.stop()
            return shed, timed_out, server.gateway.n_flows

        shed, timed_out, n_flows = run(scenario())
        assert shed["error"]["code"] == "overloaded"
        assert shed["error"]["retryable"]
        assert timed_out["error"]["code"] == "timeout"
        assert timed_out["error"]["retryable"]
        assert n_flows == 0

    def test_non_ascii_flow_id_does_not_kill_the_dispatcher(self):
        # Regression: digest_record encoded ASCII while the protocol
        # accepts any Unicode flow id, so one exotic id raised
        # UnicodeEncodeError inside the dispatcher, killed it, and made
        # every later request time out (and stop() hang on queue.join()).
        async def scenario():
            server = AdmissionServer(make_gateway(), collect_digest=True)
            await server.start_dispatcher()
            try:
                exotic = await server.submit(
                    request("admit", 0, flow="flöw-π", t=1.0)
                )
                after = await server.submit(request("ping", 1))
                return exotic, after, server.digest()
            finally:
                await server.stop()

        exotic, after, digest = run(scenario())
        assert exotic["ok"] and exotic["result"]["decision"]["admitted"]
        assert after["ok"]  # the dispatcher survived and kept serving
        assert digest is not None

    def test_unexpected_exception_answers_internal_and_loop_survives(self):
        async def scenario():
            server = AdmissionServer(make_gateway())
            await server.start_dispatcher()

            def boom(flow, t):
                raise ValueError("boom")

            server.gateway.admit = boom
            try:
                failed = await server.submit(request("admit", 0, flow="f1", t=1.0))
                alive = await server.submit(request("ping", 1))
                return failed, alive
            finally:
                await server.stop()

        failed, alive = run(scenario())
        assert failed["error"]["code"] == "internal"
        assert not failed["error"]["retryable"]
        assert alive["ok"]

    def test_submit_after_stop_answers_shutting_down(self):
        async def scenario():
            server = AdmissionServer(make_gateway())
            await server.start_dispatcher()
            await server.stop()
            return await server.submit(request("ping", 0))

        response = run(scenario())
        assert response["error"]["code"] == "shutting-down"
        assert response["error"]["retryable"]


class TestCoalescing:
    """Deterministic batching: ``_submit_start`` is synchronous, so every
    request enqueued before the test yields lands in the dispatcher's
    next drain as one batch."""

    def enqueue(self, server, *requests):
        return [server._submit_start(r) for r in requests]

    def coalesced(self, server) -> float:
        return server.registry.snapshot()["counters"].get(
            "service.shard0.coalesced", 0.0
        )

    def test_run_of_single_admits_becomes_one_admit_many(self):
        async def scenario():
            server = AdmissionServer(
                make_gateway(), collect_digest=True, keep_journal=True
            )
            await server.start_dispatcher()
            try:
                futures = self.enqueue(server, *(
                    request("admit", i, flow=f"f{i}", t=1.0 + i * 0.1)
                    for i in range(6)
                ))
                responses = await asyncio.gather(*futures)
            finally:
                await server.stop()
            return server, responses

        server, responses = run(scenario())
        assert all(r["ok"] for r in responses)
        assert [r["result"]["decision"]["admitted"] for r in responses]
        # One batched gateway call, journalled as the admit_many that
        # actually executed, stamped with the run's folded clock ...
        assert [op for op, _, _ in server.journal] == ["admit_many"]
        assert server.journal[0][1] == [f"f{i}" for i in range(6)]
        assert server.journal[0][2] == pytest.approx(1.5)
        assert self.coalesced(server) == 6.0
        # ... and the replay invariant holds on the batched journal.
        assert replay_journal(make_gateway(), server.journal) == server.digest()

    def test_mixed_ops_split_at_run_boundaries(self):
        async def scenario():
            server = AdmissionServer(
                make_gateway(), collect_digest=True, keep_journal=True
            )
            await server.start_dispatcher()
            try:
                admits = self.enqueue(server, *(
                    request("admit", i, flow=f"f{i}", t=1.0)
                    for i in range(3)
                ))
                pings = self.enqueue(server, request("ping", 90))
                departs = self.enqueue(server, *(
                    request("depart", 10 + i, flow=f"f{i}", t=2.0)
                    for i in range(3)
                ))
                responses = await asyncio.gather(*admits, *pings, *departs)
            finally:
                await server.stop()
            return server, responses

        server, responses = run(scenario())
        assert all(r["ok"] for r in responses)
        assert [op for op, _, _ in server.journal] == [
            "admit_many", "depart_many"
        ]
        assert server.gateway.n_flows == 0
        assert replay_journal(make_gateway(), server.journal) == server.digest()

    def test_duplicate_in_a_run_gets_exact_blame(self):
        """A duplicate admit inside one batch must fail alone with the
        same typed error sequential dispatch gives, while its innocent
        batch-mates still succeed."""

        async def scenario():
            server = AdmissionServer(
                make_gateway(), collect_digest=True, keep_journal=True
            )
            await server.start_dispatcher()
            try:
                futures = self.enqueue(
                    server,
                    request("admit", 0, flow="f1", t=1.0),
                    request("admit", 1, flow="f1", t=1.1),  # duplicate
                    request("admit", 2, flow="f2", t=1.2),
                )
                responses = await asyncio.gather(*futures)
            finally:
                await server.stop()
            return server, responses

        server, responses = run(scenario())
        assert responses[0]["ok"] and responses[2]["ok"]
        assert not responses[1]["ok"]
        assert responses[1]["error"]["code"] == "state-error"
        # The batch fell back to per-request dispatch: plain admits in
        # the journal, which still replays to the digest.
        assert [op for op, _, _ in server.journal] == ["admit", "admit"]
        assert replay_journal(make_gateway(), server.journal) == server.digest()

    def test_unknown_flow_in_a_depart_run_gets_exact_blame(self):
        async def scenario():
            server = AdmissionServer(
                make_gateway(), collect_digest=True, keep_journal=True
            )
            await server.start_dispatcher()
            try:
                admits = self.enqueue(server, *(
                    request("admit", i, flow=f"f{i}", t=1.0)
                    for i in range(2)
                ))
                await asyncio.gather(*admits)
                departs = self.enqueue(
                    server,
                    request("depart", 10, flow="f0", t=2.0),
                    request("depart", 11, flow="ghost", t=2.0),
                    request("depart", 12, flow="f1", t=2.0),
                )
                responses = await asyncio.gather(*departs)
            finally:
                await server.stop()
            return server, responses

        server, responses = run(scenario())
        assert responses[0]["ok"] and responses[2]["ok"]
        assert responses[1]["error"]["code"] == "unknown-flow"
        assert server.gateway.n_flows == 0
        assert replay_journal(make_gateway(), server.journal) == server.digest()

    def test_max_coalesce_1_disables_batching(self):
        async def scenario():
            server = AdmissionServer(
                make_gateway(),
                config=ServerConfig(max_coalesce=1),
                collect_digest=True,
                keep_journal=True,
            )
            await server.start_dispatcher()
            try:
                futures = self.enqueue(server, *(
                    request("admit", i, flow=f"f{i}", t=1.0)
                    for i in range(4)
                ))
                responses = await asyncio.gather(*futures)
            finally:
                await server.stop()
            return server, responses

        server, responses = run(scenario())
        assert all(r["ok"] for r in responses)
        assert [op for op, _, _ in server.journal] == ["admit"] * 4
        assert self.coalesced(server) == 0.0
        assert replay_journal(make_gateway(), server.journal) == server.digest()


class TestDigestAndJournal:
    def test_digest_matches_sequential_replay_of_the_journal(self):
        async def scenario():
            server = AdmissionServer(
                make_gateway(), collect_digest=True, keep_journal=True
            )
            await server.start_dispatcher()
            try:
                t = 0.0
                for i in range(40):
                    t += 0.25
                    await server.submit(
                        request("admit", i, flow=f"f{i}", t=t)
                    )
                    if i >= 10:
                        await server.submit(
                            request("depart", 100 + i, flow=f"f{i - 10}", t=t)
                        )
                await server.submit(
                    request("admit_many", 500,
                            flows=[f"burst{j}" for j in range(8)], t=t + 1.0)
                )
            finally:
                await server.stop()
            return server

        server = run(scenario())
        assert len(server.journal) > 0
        fresh = make_gateway()
        assert replay_journal(fresh, server.journal) == server.digest()

    def test_digest_record_matches_replay_format(self):
        gateway = make_gateway()
        decision = gateway.admit("f1", 1.0)
        line = digest_record("f1", decision).decode("ascii")
        assert line == (
            f"f1|{int(decision.admitted)}|{decision.reason}|"
            f"{decision.link}|{decision.n_flows}|{decision.target!r}\n"
        )


class TestShardHealth:
    def test_aggregation(self):
        gateway = make_gateway(n_links=2)
        gateway.tick(1.0)
        assert shard_health(gateway) is LinkHealth.HEALTHY

        # One stale feed degrades the shard without quarantining it.
        gateway.links[0].feed.pause()
        gateway.tick(8.0)  # past STALE_HORIZON for the paused feed
        assert gateway.links[0].health is LinkHealth.DEGRADED
        assert shard_health(gateway) is LinkHealth.DEGRADED

        # Every breaker open: the shard can only fail closed.
        for link in gateway.links:
            link.breaker.trip(9.0)
        gateway.tick(9.0)
        assert shard_health(gateway) is LinkHealth.QUARANTINED


class TestMetricsWriterIntegration:
    def test_stop_flushes_the_final_partial_interval(self):
        async def scenario():
            gateway = make_gateway()
            sink = io.StringIO()
            writer = MetricsJsonlWriter(
                gateway.registry, sink, interval=100.0
            )
            server = AdmissionServer(gateway, metrics_writer=writer)
            await server.start_dispatcher()
            await server.submit(request("admit", 0, flow="f1", t=1.0))
            await server.submit(request("admit", 1, flow="f2", t=2.5))
            await server.stop()
            return writer, sink.getvalue()

        writer, payload = run(scenario())
        lines = [line for line in payload.splitlines() if line]
        # One periodic snapshot at t=1 plus the close() flush at t=2.5.
        assert writer.snapshots == len(lines) == 2
        assert writer.closed
        assert '"t": 2.5' in lines[-1]


class TestTcp:
    def test_pipelined_requests_answered_in_order(self):
        async def scenario():
            server = AdmissionServer(make_gateway())
            async with server.serving() as (host, port):
                reader, writer = await asyncio.open_connection(host, port)
                for i in range(5):
                    writer.write(encode_frame(
                        request("admit", i, flow=f"f{i}", t=float(i + 1))
                    ))
                await writer.drain()
                responses = [await read_frame(reader) for _ in range(5)]
                writer.close()
                await writer.wait_closed()
            return responses

        responses = run(scenario())
        assert [r["id"] for r in responses] == list(range(5))
        assert all(r["ok"] for r in responses)

    def test_connection_cap_answers_typed_error(self):
        async def scenario():
            server = AdmissionServer(
                make_gateway(), config=ServerConfig(max_connections=1)
            )
            async with server.serving() as (host, port):
                r1, w1 = await asyncio.open_connection(host, port)
                await write_frame(w1, request("ping", 0))
                assert (await read_frame(r1))["ok"]  # holds the one slot
                r2, w2 = await asyncio.open_connection(host, port)
                refused = await read_frame(r2)
                at_eof = await read_frame(r2)
                w1.close()
                w2.close()
            return refused, at_eof

        refused, at_eof = run(scenario())
        assert refused["error"]["code"] == "too-many-connections"
        assert refused["error"]["retryable"]
        assert at_eof is None  # server closed after the error frame

    def test_corrupt_frame_gets_error_then_close(self):
        async def scenario():
            server = AdmissionServer(make_gateway())
            async with server.serving() as (host, port):
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b"\xff\xff\xff\xff")  # absurd length prefix
                await writer.drain()
                response = await read_frame(reader)
                at_eof = await read_frame(reader)
                writer.close()
            return response, at_eof

        response, at_eof = run(scenario())
        assert response["error"]["code"] == "bad-frame"
        assert at_eof is None

    def test_double_start_raises(self):
        async def scenario():
            server = AdmissionServer(make_gateway())
            async with server.serving():
                with pytest.raises(Exception, match="already listening"):
                    await server.start()

        run(scenario())
