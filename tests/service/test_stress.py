"""Concurrency stress: many clients, one server, one serialized truth.

The tentpole invariant: no matter how many clients hammer the server
concurrently, the dispatch queue serializes every decision, so the
server's decision digest is *exactly* what a sequential replay of its
journal produces on a fresh identical gateway.  If any two requests ever
interleaved inside the gateway, the digests would diverge.
"""

from __future__ import annotations

import asyncio

from repro.service.client import AsyncAdmissionClient
from repro.service.server import AdmissionServer, ServerConfig, replay_journal

from .conftest import make_gateway, run

N_CLIENTS = 200
OPS_PER_CLIENT = 3


class TestConcurrentStress:
    def test_hundreds_of_clients_serialize_to_one_digest(self):
        async def client_session(host, port, index):
            async with AsyncAdmissionClient(
                host, port, timeout=30.0, retries=0
            ) as client:
                admitted = []
                for i in range(OPS_PER_CLIENT):
                    flow = f"c{index}-{i}"
                    t = 1.0 + index * 0.01 + i * 0.001
                    decision = await client.admit(flow, t=t)
                    if decision.admitted:
                        admitted.append((flow, t))
                for flow, t in admitted:
                    await client.depart(flow, t=t + 0.5)
                return len(admitted)

        async def scenario():
            server = AdmissionServer(
                make_gateway(),
                config=ServerConfig(
                    max_connections=N_CLIENTS + 8,
                    max_queue_depth=8 * N_CLIENTS,
                    request_timeout=30.0,
                ),
                collect_digest=True,
                keep_journal=True,
            )
            async with server.serving() as (host, port):
                results = await asyncio.gather(
                    *(
                        client_session(host, port, k)
                        for k in range(N_CLIENTS)
                    )
                )
                errors = server.registry.snapshot()["counters"].get(
                    "service.shard0.errors", 0.0
                )
            return server, results, errors

        server, results, errors = run(scenario())
        # Every request was answered, none with an error frame.
        assert errors == 0.0
        # Every admit made it into the journal (coalescing may batch many
        # single admits into one admit_many entry, so count flows not
        # entries).
        admits = sum(
            len(flows) if isinstance(flows, list) else 1
            for op, flows, _ in server.journal
            if op.startswith("admit")
        )
        assert admits == N_CLIENTS * OPS_PER_CLIENT
        assert server.gateway.n_flows == 0

        # The serialized-decisions invariant, byte for byte.
        fresh = make_gateway()
        assert replay_journal(fresh, server.journal) == server.digest()

    def test_interleaved_bursts_from_concurrent_submitters(self):
        """In-process variant: concurrent submit() callers (no TCP) race
        admit_many bursts; the journal still replays to the digest."""

        async def submitter(server, index):
            flows = [f"b{index}-{i}" for i in range(5)]
            response = await server.submit(
                {"v": 1, "id": index, "op": "admit_many",
                 "flows": flows, "t": 1.0 + index * 0.01}
            )
            assert response["ok"]
            return response

        async def scenario():
            server = AdmissionServer(
                make_gateway(), collect_digest=True, keep_journal=True
            )
            await server.start_dispatcher()
            try:
                await asyncio.gather(
                    *(submitter(server, k) for k in range(64))
                )
            finally:
                await server.stop()
            return server

        server = run(scenario())
        assert len(server.journal) == 64
        fresh = make_gateway()
        assert replay_journal(fresh, server.journal) == server.digest()
