"""v1/v2 interop: negotiation, fallback, garbage peers, pipelining.

The matrix the tentpole promises: a v2 server serves pinned v1 clients,
a v2 client downgrades transparently against a legacy v1 server, a peer
that speaks garbage gets a typed answer (never a hang) in both
directions, and a mixed fleet of v1/v2 clients racing pipelined requests
still yields a served digest that a sequential replay of the journal
reproduces byte for byte.
"""

from __future__ import annotations

import asyncio
import struct

import pytest

from repro.core.controllers import CertaintyEquivalentController
from repro.core.estimators import MemorylessEstimator
from repro.errors import ProtocolError, RemoteError
from repro.runtime.gateway import AdmissionGateway
from repro.runtime.link import ManagedLink
from repro.runtime.metrics import MetricsRegistry
from repro.service.client import AsyncAdmissionClient
from repro.service.protocol import (
    PROTOCOL_VERSION,
    PROTOCOL_VERSION_2,
    V2_MAGIC,
    encode_frame,
    read_frame,
)
from repro.service.server import AdmissionServer, ServerConfig, replay_journal
from repro.telemetry import IngestFeed

from .conftest import make_gateway, run

_LENGTH = struct.Struct("!I")


async def raw_server(reply_for):
    """A byte-level peer: ``reply_for(body_bytes) -> raw reply or None``.

    Records every request body it reads so tests can assert which
    encoding the client actually put on the wire.
    """
    bodies: list[bytes] = []

    async def handle(reader, writer):
        try:
            while True:
                header = await reader.readexactly(4)
                (length,) = _LENGTH.unpack(header)
                body = await reader.readexactly(length)
                bodies.append(body)
                reply = reply_for(body)
                if reply is None:
                    break
                writer.write(reply)
                await writer.drain()
        except (asyncio.IncompleteReadError, ConnectionError):
            pass
        finally:
            writer.close()

    server = await asyncio.start_server(handle, "127.0.0.1", 0)
    host, port = server.sockets[0].getsockname()[:2]
    return server, host, port, bodies


def json_reply(payload: dict) -> bytes:
    return encode_frame(payload)


def frame_of(body: bytes) -> dict:
    """Decode a request body the way a server would (v1 or v2)."""
    from repro.service.protocol import decode_frame_body

    return decode_frame_body(body)


class TestNegotiationMatrix:
    def test_v2_server_serves_pinned_v1_client(self):
        async def scenario():
            server = AdmissionServer(make_gateway(), collect_digest=True)
            async with server.serving() as (host, port):
                async with AsyncAdmissionClient(
                    host, port, wire_version=1
                ) as client:
                    decision = await client.admit("f1", t=1.0)
                    assert decision.admitted
                    assert await client.depart("f1", t=2.0)
                    # The server advertised max_v=2, but the pin wins.
                    assert client.negotiated_version == PROTOCOL_VERSION

        run(scenario())

    def test_v2_client_downgrades_against_legacy_v1_server(self):
        """A pre-v2 server never advertises max_v; the client must keep
        speaking JSON v1 for the whole connection and still work."""

        def legacy_reply(body: bytes) -> bytes:
            frame = frame_of(body)
            # What a legacy build would say: ok, no max_v field at all.
            return json_reply({
                "v": 1, "id": frame["id"], "ok": True,
                "result": {"t": frame.get("t", 0.0), "departed": 1},
            })

        async def scenario():
            server, host, port, bodies = await raw_server(legacy_reply)
            client = AsyncAdmissionClient(host, port, retries=0)
            try:
                for t in (1.0, 2.0, 3.0):
                    assert await client.depart_many(["f"], t=t) == 1
            finally:
                await client.close()
                server.close()
                await server.wait_closed()
            return client, bodies

        client, bodies = run(scenario())
        assert client.negotiated_version == PROTOCOL_VERSION
        assert len(bodies) == 3
        assert all(body[:1] != bytes([V2_MAGIC]) for body in bodies)

    def test_v2_client_upgrades_after_first_response(self):
        async def scenario():
            server = AdmissionServer(make_gateway())
            async with server.serving() as (host, port):
                async with AsyncAdmissionClient(host, port) as client:
                    assert client.negotiated_version == PROTOCOL_VERSION
                    await client.admit("f1", t=1.0)
                    assert client.negotiated_version == PROTOCOL_VERSION_2
                    await client.depart("f1", t=2.0)

        run(scenario())


class TestGarbagePeers:
    def timed(self, coro, limit=5.0):
        """Run with a hard cap: a hang here fails fast, not forever."""

        async def capped():
            return await asyncio.wait_for(coro(), timeout=limit)

        return run(capped())

    def test_garbage_first_frame_from_server_is_a_typed_error(self):
        for garbage_body in (
            bytes([V2_MAGIC, 99, 0x81, 0x02]) + b"\x00" * 16,  # binary "v99"
            b"\x00\x01\x02\x03 definitely not json",
        ):
            garbage = _LENGTH.pack(len(garbage_body)) + garbage_body

            async def scenario():
                server, host, port, _ = await raw_server(lambda body: garbage)
                client = AsyncAdmissionClient(host, port, retries=0)
                try:
                    with pytest.raises(RemoteError) as exc:
                        await client.ping()
                finally:
                    await client.close()
                    server.close()
                    await server.wait_closed()
                return exc.value.code

            assert self.timed(scenario) in ("bad-version", "bad-frame")

    def test_garbage_first_frame_from_client_is_answered_and_closed(self):
        async def scenario():
            server = AdmissionServer(make_gateway())
            async with server.serving() as (host, port):
                reader, writer = await asyncio.open_connection(host, port)
                body = bytes([V2_MAGIC, 3, 1, 0]) + b"\x00" * 8  # binary "v3"
                writer.write(_LENGTH.pack(len(body)) + body)
                await writer.drain()
                answer = await read_frame(reader)
                # ... and the connection is closed behind the answer.
                assert await reader.read(1) == b""
                writer.close()
            return answer

        answer = run(asyncio.wait_for(scenario(), timeout=5.0))
        assert answer["ok"] is False
        assert answer["error"]["code"] == "bad-version"

    def test_non_json_garbage_from_client_is_bad_frame(self):
        async def scenario():
            server = AdmissionServer(make_gateway())
            async with server.serving() as (host, port):
                reader, writer = await asyncio.open_connection(host, port)
                body = b"\x01\x02 not a frame"
                writer.write(_LENGTH.pack(len(body)) + body)
                await writer.drain()
                answer = await read_frame(reader)
                writer.close()
            return answer

        answer = run(asyncio.wait_for(scenario(), timeout=5.0))
        assert answer["ok"] is False
        assert answer["error"]["code"] == "bad-frame"


def make_ingest_gateway(n_links: int = 2) -> AdmissionGateway:
    """Deterministic gateway whose links accept pushed telemetry."""
    registry = MetricsRegistry()
    links = []
    for i in range(n_links):
        links.append(
            ManagedLink(
                f"link{i}",
                capacity=20.0,
                holding_time=100.0,
                mean_rate=1.0,
                feed=IngestFeed(1.0, width=32),
                estimator=MemorylessEstimator(),
                controller=CertaintyEquivalentController(20.0, 0.05),
                conservative_controller=CertaintyEquivalentController(
                    20.0, alpha=3.0
                ),
                stale_horizon=5.0,
                registry=registry,
            )
        )
    return AdmissionGateway(links, placement="least-loaded", registry=registry)


class TestMixedFleetDigest:
    def test_mixed_v1_v2_clients_with_interleaved_telemetry(self):
        """Two v2 clients and one pinned-v1 client race admits, departs
        and telemetry pushes; the journal still replays to the digest."""

        async def client_session(host, port, index, wire_version):
            async with AsyncAdmissionClient(
                host, port, wire_version=wire_version,
                timeout=30.0, retries=0, max_inflight=32,
            ) as client:
                admitted = []
                for i in range(10):
                    flow = f"c{index}-{i}"
                    t = 1.0 + index * 0.01 + i * 0.001
                    if i % 3 == 0:
                        await client.telemetry(
                            f"link{index % 2}", t, 100 + i, flow=f"s{index}"
                        )
                    decision = await client.admit(flow, t=t)
                    if decision.admitted:
                        admitted.append((flow, t))
                for flow, t in admitted:
                    await client.depart(flow, t=t + 0.5)

        async def scenario():
            server = AdmissionServer(
                make_ingest_gateway(),
                config=ServerConfig(request_timeout=30.0),
                collect_digest=True,
                keep_journal=True,
            )
            async with server.serving() as (host, port):
                await asyncio.gather(
                    *(
                        client_session(host, port, k, 1 if k == 0 else 2)
                        for k in range(3)
                    )
                )
            return server

        server = run(scenario())
        ops = {op for op, _, _ in server.journal}
        assert "telemetry" in ops
        fresh = make_ingest_gateway()
        assert replay_journal(fresh, server.journal) == server.digest()


class TestPipelinedStress:
    def test_200_in_flight_replays_to_the_served_digest(self):
        """One connection, 200 concurrent requests; the coalescing
        dispatcher may batch them arbitrarily, yet the sequential replay
        of the journal reproduces the served digest byte for byte."""

        N = 200

        async def scenario():
            server = AdmissionServer(
                make_gateway(),
                config=ServerConfig(
                    request_timeout=30.0, max_queue_depth=4 * N
                ),
                collect_digest=True,
                keep_journal=True,
            )
            async with server.serving() as (host, port):
                async with AsyncAdmissionClient(
                    host, port, timeout=30.0, retries=0, max_inflight=N
                ) as client:
                    decisions = await asyncio.gather(
                        *(
                            client.admit(f"f{i}", t=1.0 + i * 1e-4)
                            for i in range(N)
                        )
                    )
                    admitted = [
                        f"f{i}" for i, d in enumerate(decisions) if d.admitted
                    ]
                    departed = await asyncio.gather(
                        *(
                            client.depart(flow, t=2.0 + i * 1e-4)
                            for i, flow in enumerate(admitted)
                        )
                    )
                    assert client.negotiated_version == PROTOCOL_VERSION_2
            return server, decisions, departed

        server, decisions, departed = run(scenario())
        assert len(decisions) == N
        assert all(link for link in departed)
        assert server.gateway.n_flows == 0
        fresh = make_gateway()
        assert replay_journal(fresh, server.journal) == server.digest()
