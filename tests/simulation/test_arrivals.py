"""Tests for the Poisson-load engine."""

import numpy as np
import pytest

from repro.core.controllers import CertaintyEquivalentController, PerfectKnowledgeController
from repro.core.estimators import ExponentialMemoryEstimator, MemorylessEstimator
from repro.errors import ParameterError
from repro.simulation.arrivals import PoissonLoadEngine
from repro.traffic.rcbr import paper_rcbr_source


def make_engine(arrival_rate=1.0, capacity=50.0, holding_time=100.0, p_ce=1e-2,
                seed=3, memory=0.0, **kwargs):
    source = paper_rcbr_source()
    estimator = (
        ExponentialMemoryEstimator(memory) if memory > 0 else MemorylessEstimator()
    )
    return PoissonLoadEngine(
        source=source,
        controller=CertaintyEquivalentController(capacity, p_ce),
        estimator=estimator,
        capacity=capacity,
        holding_time=holding_time,
        arrival_rate=arrival_rate,
        rng=np.random.default_rng(seed),
        **kwargs,
    )


class TestConstruction:
    def test_initial_fill_default(self):
        engine = make_engine()
        assert engine.n_flows > 20  # filled at t=0

    def test_empty_start_option(self):
        engine = make_engine(initial_fill=False)
        assert engine.n_flows == 1  # only the measurement seed

    def test_validation(self):
        with pytest.raises(ParameterError):
            make_engine(arrival_rate=0.0)


class TestArrivalDynamics:
    def test_offered_rate(self):
        engine = make_engine(arrival_rate=2.0)
        engine.run_until(500.0)
        # ~1000 offered arrivals in 500 time units.
        assert engine.n_offered == pytest.approx(1000, rel=0.15)

    def test_accounting_identity(self):
        engine = make_engine(arrival_rate=1.0)
        initial = engine.n_admitted  # the t=0 fill
        engine.run_until(300.0)
        carried = engine.n_admitted - initial
        assert carried + engine.n_blocked == engine.n_offered

    def test_blocking_increases_with_load(self):
        light = make_engine(arrival_rate=0.1, seed=5)
        heavy = make_engine(arrival_rate=5.0, seed=5)
        light.run_until(400.0)
        heavy.run_until(400.0)
        assert heavy.blocking_probability() > light.blocking_probability()

    def test_light_load_rarely_blocks(self):
        # Carrying capacity ~ capacity/holding = 0.5 flows/unit; offer 0.05.
        engine = make_engine(arrival_rate=0.05, holding_time=100.0, seed=9)
        engine.run_until(1000.0)
        assert engine.blocking_probability() < 0.1

    def test_departures_free_capacity(self):
        """Under heavy load occupancy hovers at the admissible ceiling."""
        from repro.core.admission import admissible_flow_count

        src = paper_rcbr_source()
        engine = make_engine(arrival_rate=5.0, holding_time=50.0, seed=2)
        engine.run_until(400.0)
        ceiling = admissible_flow_count(src.mean, src.std, 50.0, 1e-2)
        # The MBAC's ceiling is based on *measured* parameters, which
        # fluctuate around the truth; allow the measurement slack.
        assert engine.n_flows <= 1.15 * ceiling
        assert engine.n_flows > 0.7 * ceiling


class TestStatistics:
    def test_reset_clears_counters(self):
        engine = make_engine(arrival_rate=1.0)
        engine.run_until(100.0)
        engine.reset_statistics()
        assert engine.n_offered == 0
        assert engine.n_blocked == 0
        assert engine.blocking_probability() == 0.0

    def test_no_worse_than_continuous_load(self):
        """The paper's Section 4 claim on a matched configuration."""
        from repro.core.estimators import MemorylessEstimator
        from repro.simulation.engine import EventDrivenEngine

        kwargs = dict(
            capacity=50.0,
            holding_time=100.0,
            p_ce=5e-2,
        )
        finite = make_engine(arrival_rate=0.4, seed=11, **kwargs)
        finite.run_until(2000.0)
        continuous = EventDrivenEngine(
            source=paper_rcbr_source(),
            controller=CertaintyEquivalentController(50.0, 5e-2),
            estimator=MemorylessEstimator(),
            capacity=50.0,
            holding_time=100.0,
            rng=np.random.default_rng(12),
        )
        continuous.run_until(2000.0)
        assert (
            finite.link.overflow_fraction
            <= continuous.link.overflow_fraction + 0.01
        )

    def test_rate_changes_still_processed(self):
        engine = make_engine(arrival_rate=0.5)
        engine.run_until(50.0)
        assert engine.n_rate_changes > 100


class TestPerfectControllerUnderPoisson:
    def test_blocking_with_static_controller(self):
        src = paper_rcbr_source()
        engine = PoissonLoadEngine(
            source=src,
            controller=PerfectKnowledgeController(src.mean, src.std, 50.0, 1e-2),
            estimator=MemorylessEstimator(),
            capacity=50.0,
            holding_time=50.0,
            arrival_rate=5.0,
            rng=np.random.default_rng(21),
        )
        engine.run_until(500.0)
        # Heavily overloaded: most arrivals blocked, occupancy at m*.
        assert engine.blocking_probability() > 0.5


class TestErlangBValidation:
    """With CBR flows the Poisson engine is exactly M/M/m/m: its blocking
    must match the Erlang-B formula."""

    def test_erlang_b_values(self):
        from repro.simulation.arrivals import erlang_b

        # Classical reference values (e.g. B(a=2, m=4) = 2/21 ~ 0.0952...).
        assert erlang_b(2.0, 4) == pytest.approx(2.0 / 21.0, rel=1e-12)
        assert erlang_b(0.0, 3) == 0.0
        assert erlang_b(5.0, 0) == 1.0

    def test_erlang_b_monotonicity(self):
        from repro.simulation.arrivals import erlang_b

        assert erlang_b(3.0, 5) < erlang_b(4.0, 5)  # more load, more blocking
        assert erlang_b(3.0, 6) < erlang_b(3.0, 5)  # more servers, less

    def test_engine_matches_erlang_b(self):
        from repro.simulation.arrivals import erlang_b
        from repro.traffic.marginals import DeterministicMarginal
        from repro.traffic.rcbr import RcbrSource

        rate, servers = 1.0, 10
        capacity = servers * rate + 0.5  # floor(c / rate) = 10 circuits
        holding = 10.0
        arrival_rate = 0.8  # offered load a = 8 erlangs
        source = RcbrSource(DeterministicMarginal(rate), correlation_time=5.0)
        engine = PoissonLoadEngine(
            source=source,
            controller=CertaintyEquivalentController(capacity, 1e-6),
            estimator=MemorylessEstimator(),
            capacity=capacity,
            holding_time=holding,
            arrival_rate=arrival_rate,
            rng=np.random.default_rng(42),
        )
        engine.run_until(500.0)  # warm-up past the initial fill
        engine.reset_statistics()
        engine.run_until(8000.0)
        expected = erlang_b(arrival_rate * holding, servers)
        observed = engine.blocking_probability()
        # ~6000 offered calls: binomial s.e. ~ 0.5%.
        assert observed == pytest.approx(expected, abs=0.025)
