"""Tests for the buffered-link comparator."""

import pytest

from repro.errors import ParameterError
from repro.simulation.buffered import BufferedLink


class TestQueueDynamics:
    def test_no_loss_below_capacity(self):
        link = BufferedLink(capacity=10.0, buffer_size=5.0)
        link.accumulate(8.0, 10.0)
        assert link.queue == 0.0
        assert link.lost_work == 0.0

    def test_fill_without_overflow(self):
        link = BufferedLink(capacity=10.0, buffer_size=5.0)
        link.accumulate(12.0, 2.0)  # net +2 for 2 units -> queue 4 < 5
        assert link.queue == pytest.approx(4.0)
        assert link.lost_work == 0.0

    def test_fill_then_overflow_split_exactly(self):
        link = BufferedLink(capacity=10.0, buffer_size=5.0)
        link.accumulate(12.0, 4.0)  # fills in 2.5, overflows 1.5 at rate 2
        assert link.queue == pytest.approx(5.0)
        assert link.lost_work == pytest.approx(3.0)
        assert link.loss_time == pytest.approx(1.5)

    def test_drain_after_burst(self):
        link = BufferedLink(capacity=10.0, buffer_size=5.0)
        link.accumulate(12.0, 2.0)  # queue 4
        link.accumulate(8.0, 1.0)  # drains at 2 -> queue 2
        assert link.queue == pytest.approx(2.0)
        link.accumulate(8.0, 10.0)  # empties mid-interval, stays 0
        assert link.queue == 0.0

    def test_zero_buffer_equals_bufferless_loss(self):
        """With B=0, lost work = excess work, loss time = overload time."""
        link = BufferedLink(capacity=10.0, buffer_size=0.0)
        link.accumulate(12.0, 3.0)
        link.accumulate(8.0, 3.0)
        assert link.lost_work == pytest.approx(6.0)
        assert link.loss_time == pytest.approx(3.0)

    def test_exact_capacity_is_neutral(self):
        link = BufferedLink(capacity=10.0, buffer_size=5.0)
        link.accumulate(10.0, 100.0)
        assert link.queue == 0.0 and link.lost_work == 0.0


class TestMetrics:
    def test_loss_fraction(self):
        link = BufferedLink(capacity=10.0, buffer_size=0.0)
        link.accumulate(20.0, 1.0)  # offered 20, lost 10
        assert link.loss_fraction == pytest.approx(0.5)

    def test_loss_time_fraction(self):
        link = BufferedLink(capacity=10.0, buffer_size=0.0)
        link.accumulate(20.0, 1.0)
        link.accumulate(5.0, 3.0)
        assert link.loss_time_fraction == pytest.approx(0.25)

    def test_empty_link_fractions(self):
        link = BufferedLink(capacity=10.0, buffer_size=1.0)
        assert link.loss_fraction == 0.0
        assert link.loss_time_fraction == 0.0

    def test_reset_keeps_backlog(self):
        link = BufferedLink(capacity=10.0, buffer_size=5.0)
        link.accumulate(12.0, 2.0)
        backlog = link.queue
        link.reset_statistics()
        assert link.queue == backlog
        assert link.offered_work == 0.0 and link.lost_work == 0.0


class TestBufferMonotonicity:
    def test_bigger_buffer_never_loses_more(self):
        """Exact path-wise dominance on an arbitrary demand pattern."""
        demands = [(12.0, 1.0), (9.0, 0.5), (15.0, 2.0), (5.0, 1.0), (11.0, 3.0)]
        losses = []
        for buffer_size in [0.0, 1.0, 3.0, 10.0]:
            link = BufferedLink(capacity=10.0, buffer_size=buffer_size)
            for aggregate, duration in demands:
                link.accumulate(aggregate, duration)
            losses.append(link.lost_work)
        assert losses == sorted(losses, reverse=True)


class TestValidation:
    def test_bad_construction(self):
        with pytest.raises(ParameterError):
            BufferedLink(capacity=0.0, buffer_size=1.0)
        with pytest.raises(ParameterError):
            BufferedLink(capacity=1.0, buffer_size=-1.0)
        with pytest.raises(ParameterError):
            BufferedLink(capacity=1.0, buffer_size=1.0, queue=2.0)

    def test_bad_accumulate(self):
        link = BufferedLink(capacity=1.0, buffer_size=1.0)
        with pytest.raises(ParameterError):
            link.accumulate(1.0, -1.0)
        with pytest.raises(ParameterError):
            link.accumulate(-1.0, 1.0)


class TestEngineIntegration:
    def test_observers_driven_by_fast_engine(self, paper_source):
        import numpy as np

        from repro.core.controllers import CertaintyEquivalentController
        from repro.core.estimators import MemorylessEstimator
        from repro.simulation.fast import FastEngine, as_vector_model

        buffered = BufferedLink(capacity=30.0, buffer_size=2.0)
        engine = FastEngine(
            model=as_vector_model(paper_source),
            controller=CertaintyEquivalentController(30.0, 5e-2),
            estimator=MemorylessEstimator(),
            capacity=30.0,
            holding_time=100.0,
            dt=0.1,
            rng=np.random.default_rng(0),
            observers=[buffered],
        )
        engine.run_until(300.0)
        assert buffered.observed_time == pytest.approx(300.0)
        # The buffered metric is bounded by the bufferless one.
        bufferless_lost = (
            engine.link.demand_time - engine.link.bandwidth_time
        ) / engine.link.demand_time
        assert buffered.loss_fraction <= bufferless_lost + 1e-12

    def test_observers_driven_by_event_engine(self, paper_source):
        import numpy as np

        from repro.core.controllers import CertaintyEquivalentController
        from repro.core.estimators import MemorylessEstimator
        from repro.simulation.engine import EventDrivenEngine

        buffered = BufferedLink(capacity=30.0, buffer_size=2.0)
        engine = EventDrivenEngine(
            source=paper_source,
            controller=CertaintyEquivalentController(30.0, 5e-2),
            estimator=MemorylessEstimator(),
            capacity=30.0,
            holding_time=100.0,
            rng=np.random.default_rng(0),
            observers=[buffered],
        )
        engine.run_until(200.0)
        assert buffered.observed_time == pytest.approx(200.0)

    def test_reset_propagates_to_observers(self, paper_source):
        import numpy as np

        from repro.core.controllers import CertaintyEquivalentController
        from repro.core.estimators import MemorylessEstimator
        from repro.simulation.fast import FastEngine, as_vector_model

        buffered = BufferedLink(capacity=30.0, buffer_size=2.0)
        engine = FastEngine(
            model=as_vector_model(paper_source),
            controller=CertaintyEquivalentController(30.0, 5e-2),
            estimator=MemorylessEstimator(),
            capacity=30.0,
            holding_time=100.0,
            dt=0.1,
            rng=np.random.default_rng(0),
            observers=[buffered],
        )
        engine.run_until(50.0)
        engine.reset_statistics()
        assert buffered.observed_time == 0.0
