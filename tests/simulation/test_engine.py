"""Tests for the continuous-time event-driven engine."""

import math

import numpy as np
import pytest

from repro.core.controllers import (
    CertaintyEquivalentController,
    PerfectKnowledgeController,
)
from repro.core.estimators import ExponentialMemoryEstimator, MemorylessEstimator
from repro.errors import ParameterError
from repro.simulation.engine import EventDrivenEngine
from repro.traffic.rcbr import paper_rcbr_source


def make_engine(
    source=None,
    capacity=50.0,
    holding_time=200.0,
    p_ce=1e-2,
    memory=0.0,
    seed=3,
    **kwargs,
):
    source = source if source is not None else paper_rcbr_source()
    controller = CertaintyEquivalentController(capacity, p_ce)
    estimator = (
        ExponentialMemoryEstimator(memory) if memory > 0 else MemorylessEstimator()
    )
    return EventDrivenEngine(
        source=source,
        controller=controller,
        estimator=estimator,
        capacity=capacity,
        holding_time=holding_time,
        rng=np.random.default_rng(seed),
        **kwargs,
    )


class TestConstruction:
    def test_bootstrap_fills_system(self):
        engine = make_engine()
        # At t=0 the MBAC admits roughly up to its criterion (capacity 50).
        assert 30 <= engine.n_flows <= 60

    def test_aggregate_matches_flows(self):
        engine = make_engine()
        manual = sum(f.rate for f in engine.flows.values())
        assert engine.aggregate_rate == pytest.approx(manual)

    def test_validation(self):
        with pytest.raises(ParameterError):
            make_engine(holding_time=-1.0)
        with pytest.raises(ParameterError):
            make_engine(sample_period=0.0)


class TestInvariants:
    def test_conservation_of_flows(self):
        engine = make_engine()
        engine.run_until(50.0)
        assert engine.n_flows == engine.n_admitted - engine.n_departed
        assert engine.n_flows >= 0

    def test_aggregate_consistency_after_run(self):
        engine = make_engine()
        engine.run_until(50.0)
        manual = sum(f.rate for f in engine.flows.values())
        assert engine.aggregate_rate == pytest.approx(manual, rel=1e-9)

    def test_time_advances_exactly(self):
        engine = make_engine()
        engine.run_until(17.5)
        assert engine.time == pytest.approx(17.5)
        assert engine.link.observed_time == pytest.approx(17.5)

    def test_run_until_rejects_backwards(self):
        engine = make_engine()
        engine.run_until(5.0)
        with pytest.raises(ParameterError):
            engine.run_until(4.0)

    def test_rate_changes_happen(self):
        engine = make_engine()
        engine.run_until(20.0)
        # ~40 flows renegotiating at rate 1/T_c=1 for 20 time units.
        assert engine.n_rate_changes > 200

    def test_departures_happen(self):
        engine = make_engine(holding_time=10.0)
        engine.run_until(50.0)
        assert engine.n_departed > 50


class TestAdmissionBehaviour:
    def test_occupancy_tracks_criterion(self):
        """Time-average occupancy must sit near the admissible count for
        the true parameters."""
        from repro.core.admission import admissible_flow_count

        engine = make_engine(p_ce=1e-2, holding_time=50.0)
        engine.run_until(100.0)
        engine.reset_statistics()
        engine.run_until(400.0)
        src = paper_rcbr_source()
        m_star = admissible_flow_count(src.mean, src.std, 50.0, 1e-2)
        mean_flows = engine.link.demand_time / (src.mean * engine.link.observed_time)
        assert mean_flows == pytest.approx(m_star, rel=0.1)

    def test_never_exceeds_max_flows(self):
        engine = make_engine(max_flows=40)
        engine.run_until(50.0)
        assert engine.n_flows <= 40
        assert engine.cap_hits > 0

    def test_perfect_controller_holds_m_star(self):
        src = paper_rcbr_source()
        controller = PerfectKnowledgeController(src.mean, src.std, 50.0, 1e-2)
        engine = EventDrivenEngine(
            source=src,
            controller=controller,
            estimator=MemorylessEstimator(),
            capacity=50.0,
            holding_time=100.0,
            rng=np.random.default_rng(1),
        )
        engine.run_until(100.0)
        m_star = int(math.floor(controller.m_star))
        # Infinite load refills instantly at every event: occupancy is
        # pinned to floor(m_star) whenever an event just fired.
        assert abs(engine.n_flows - m_star) <= 1


class TestStatistics:
    def test_sampling_counts(self):
        engine = make_engine(sample_period=2.0)
        engine.run_until(41.0)
        assert engine.recorder.n_samples == 20

    def test_reset_statistics(self):
        engine = make_engine(sample_period=2.0)
        engine.run_until(20.0)
        engine.reset_statistics()
        assert engine.recorder.n_samples == 0
        assert engine.link.observed_time == 0.0
        engine.run_until(30.0)
        assert engine.link.observed_time == pytest.approx(10.0)

    def test_overload_fraction_with_tiny_capacity(self):
        """A link sized for ~2 flows runs hot: overload fraction must be
        substantial, and utilization high."""
        engine = make_engine(capacity=2.0, holding_time=20.0, p_ce=0.4)
        engine.run_until(200.0)
        assert engine.link.overflow_fraction > 0.05
        assert engine.link.mean_utilization > 0.5

    def test_batch_means_populated(self):
        engine = make_engine(sample_period=1.0, batch_duration=5.0)
        engine.run_until(52.0)
        assert engine.batch.n_batches == 10


class TestDeterminism:
    def test_same_seed_same_trajectory(self):
        a = make_engine(seed=11)
        b = make_engine(seed=11)
        a.run_until(30.0)
        b.run_until(30.0)
        assert a.aggregate_rate == b.aggregate_rate
        assert a.n_flows == b.n_flows
        assert a.n_admitted == b.n_admitted

    def test_different_seeds_differ(self):
        a = make_engine(seed=11)
        b = make_engine(seed=12)
        a.run_until(30.0)
        b.run_until(30.0)
        assert a.aggregate_rate != b.aggregate_rate

    def test_chunked_run_equals_single_run(self):
        a = make_engine(seed=5)
        b = make_engine(seed=5)
        a.run_until(30.0)
        for t in [7.0, 13.0, 22.5, 30.0]:
            b.run_until(t)
        assert a.aggregate_rate == pytest.approx(b.aggregate_rate)
        assert a.link.busy_time == pytest.approx(b.link.busy_time)


class TestWithMemoryEstimator:
    def test_memory_estimator_runs(self):
        engine = make_engine(memory=5.0)
        engine.run_until(50.0)
        assert engine.n_flows > 0

    def test_memory_smooths_occupancy(self):
        """The paper's smoothing effect (Fig 4): with estimator memory the
        admissible count, and hence the occupancy, fluctuates far less."""

        def occupancy_std(memory: float) -> float:
            engine = make_engine(seed=8, holding_time=50.0, memory=memory)
            engine.run_until(100.0)
            samples = []
            t = 100.0
            while t < 500.0:
                t += 1.0
                engine.run_until(t)
                samples.append(engine.n_flows)
            return float(np.std(samples))

        assert occupancy_std(50.0) < 0.6 * occupancy_std(0.0)


class TestMarkovSourceIntegration:
    def test_markov_fluid_runs(self):
        from repro.traffic.markov import MarkovFluidSource

        src = MarkovFluidSource.two_state(
            rate_low=0.2, rate_high=2.0, up_rate=1.0, down_rate=1.0
        )
        controller = CertaintyEquivalentController(40.0, 1e-2)
        engine = EventDrivenEngine(
            source=src,
            controller=controller,
            estimator=MemorylessEstimator(),
            capacity=40.0,
            holding_time=100.0,
            rng=np.random.default_rng(0),
        )
        engine.run_until(100.0)
        assert engine.n_flows > 10
        assert engine.link.mean_utilization > 0.3
