"""Engine scenarios across the whole traffic-model zoo.

The figure experiments exercise RCBR and traces; these tests drive the
engines with every other source family and check physically-required
outcomes, so regressions in any source/engine pairing are caught.
"""

import math

import numpy as np
import pytest

from repro.core.admission import admissible_flow_count
from repro.core.controllers import CertaintyEquivalentController
from repro.core.estimators import (
    ExponentialMemoryEstimator,
    MemorylessEstimator,
    SlidingWindowEstimator,
)
from repro.simulation.engine import EventDrivenEngine
from repro.simulation.runner import SimulationConfig, simulate
from repro.traffic.heterogeneous import HeterogeneousPopulation
from repro.traffic.marginals import DeterministicMarginal, TruncatedGaussianMarginal
from repro.traffic.onoff import OnOffSource
from repro.traffic.rcbr import RcbrSource


def run_event_engine(source, *, capacity, p_ce=1e-2, holding_time=100.0,
                     t_end=200.0, estimator=None, seed=0):
    engine = EventDrivenEngine(
        source=source,
        controller=CertaintyEquivalentController(capacity, p_ce),
        estimator=estimator if estimator is not None else MemorylessEstimator(),
        capacity=capacity,
        holding_time=holding_time,
        rng=np.random.default_rng(seed),
    )
    engine.run_until(t_end)
    return engine


class TestCbrFlows:
    def test_packs_link_exactly(self):
        """Constant-rate flows: the MBAC packs floor(c/rate) flows and the
        link never overflows."""
        source = RcbrSource(DeterministicMarginal(2.0), correlation_time=5.0)
        engine = run_event_engine(source, capacity=41.0)
        assert engine.n_flows == 20
        assert engine.link.overflow_fraction == 0.0
        assert engine.link.mean_utilization == pytest.approx(40.0 / 41.0, rel=0.02)


class TestOnOffFlows:
    def test_multiplexing_gain(self):
        """On-off flows at activity 0.5 multiplex ~2x over peak allocation."""
        source = OnOffSource(peak=2.0, activity=0.5, burst_time=1.0)
        engine = run_event_engine(source, capacity=50.0, p_ce=5e-2, t_end=400.0)
        engine_flows = engine.link.demand_time / (source.mean * engine.link.observed_time)
        peak_allocation = 50.0 / source.peak_rate  # 25 flows
        assert engine_flows > 1.4 * peak_allocation

    def test_respects_target_roughly(self):
        source = OnOffSource(peak=2.0, activity=0.5, burst_time=1.0)
        engine = run_event_engine(source, capacity=50.0, p_ce=5e-2, t_end=600.0,
                                  estimator=ExponentialMemoryEstimator(10.0))
        # On-off aggregate is only approximately Gaussian at n ~ 35; allow
        # a small factor around the configured 5e-2.
        assert engine.link.overflow_fraction < 4.0 * 5e-2


class TestHeterogeneousFlows:
    def test_event_engine_with_mixture(self):
        classes = [
            RcbrSource(TruncatedGaussianMarginal.from_cv(0.5, 0.3), 1.0),
            RcbrSource(TruncatedGaussianMarginal.from_cv(2.0, 0.3), 1.0),
        ]
        population = HeterogeneousPopulation(classes, [0.5, 0.5])
        engine = run_event_engine(population, capacity=60.0, t_end=300.0)
        assert engine.n_flows > 10
        mean_rate = engine.aggregate_rate / engine.n_flows
        assert 0.4 < mean_rate < 2.2

    def test_conservative_vs_homogeneous(self):
        """Same total mean/capacity: the heterogeneous mixture leads to
        fewer admitted flows (the variance-estimator bias)."""
        homogeneous = RcbrSource(TruncatedGaussianMarginal.from_cv(1.0, 0.3), 1.0)
        mixture = HeterogeneousPopulation(
            [
                RcbrSource(TruncatedGaussianMarginal.from_cv(0.5, 0.3), 1.0),
                RcbrSource(TruncatedGaussianMarginal.from_cv(1.5, 0.3), 1.0),
            ],
            [0.5, 0.5],
        )
        def steady_state_utilization(source, seed):
            engine = run_event_engine(
                source, capacity=60.0, t_end=300.0,
                estimator=ExponentialMemoryEstimator(5.0), seed=seed,
            )
            engine.reset_statistics()  # discard the bootstrap transient
            engine.run_until(900.0)
            return engine.link.mean_utilization

        util_homo = steady_state_utilization(homogeneous, seed=3)
        util_mix = steady_state_utilization(mixture, seed=3)
        assert util_mix < util_homo


class TestSlidingWindowInEngine:
    def test_sliding_window_runs_and_holds_target(self):
        source = RcbrSource(TruncatedGaussianMarginal.from_cv(1.0, 0.3), 1.0)
        engine = run_event_engine(
            source,
            capacity=50.0,
            p_ce=2e-2,
            t_end=500.0,
            estimator=SlidingWindowEstimator(window=10.0),
        )
        m_star = admissible_flow_count(source.mean, source.std, 50.0, 2e-2)
        mean_flows = engine.link.demand_time / (
            source.mean * engine.link.observed_time
        )
        assert mean_flows == pytest.approx(m_star, rel=0.1)

    def test_runner_accepts_sliding_shape(self):
        source = RcbrSource(TruncatedGaussianMarginal.from_cv(1.0, 0.3), 1.0)
        result = simulate(
            SimulationConfig(
                source=source,
                capacity=50.0,
                holding_time=100.0,
                p_ce=2e-2,
                memory=10.0,
                window_shape="sliding",
                engine="event",
                max_time=500.0,
                seed=1,
            )
        )
        assert result.n_samples > 0
        assert result.mean_flows > 20.0


class TestScalingLaws:
    def test_bigger_system_higher_utilization(self):
        """The heavy-traffic economy of scale: utilization rises with n
        (the sqrt(n) safety margin shrinks relatively)."""
        source = RcbrSource(TruncatedGaussianMarginal.from_cv(1.0, 0.3), 1.0)

        def utilization(n: float, seed: int) -> float:
            engine = run_event_engine(
                source,
                capacity=n,
                p_ce=1e-2,
                holding_time=50.0,
                t_end=300.0,
                estimator=ExponentialMemoryEstimator(5.0),
                seed=seed,
            )
            return engine.link.mean_utilization

        small = utilization(25.0, seed=5)
        large = utilization(400.0, seed=6)
        assert large > small

    def test_safety_margin_matches_theory(self):
        """Mean admitted flows ~ m*(n) for the perfect-information count."""
        source = RcbrSource(TruncatedGaussianMarginal.from_cv(1.0, 0.3), 1.0)
        n = 200.0
        engine = run_event_engine(
            source,
            capacity=n,
            p_ce=1e-2,
            holding_time=50.0,
            t_end=400.0,
            estimator=ExponentialMemoryEstimator(5.0),
            seed=2,
        )
        m_star = admissible_flow_count(source.mean, source.std, n, 1e-2)
        mean_flows = engine.link.demand_time / (
            source.mean * engine.link.observed_time
        )
        assert mean_flows == pytest.approx(m_star, rel=0.07)
        assert mean_flows < n  # a genuine sqrt(n) margin remains
