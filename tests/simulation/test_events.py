"""Tests for the event queue."""

import pytest

from repro.errors import SimulationError
from repro.simulation.events import EventKind, EventQueue


class TestOrdering:
    def test_time_order(self):
        q = EventQueue()
        q.push(2.0, EventKind.RATE_CHANGE, 1)
        q.push(1.0, EventKind.RATE_CHANGE, 2)
        q.push(3.0, EventKind.RATE_CHANGE, 3)
        times = [q.pop()[0] for _ in range(3)]
        assert times == [1.0, 2.0, 3.0]

    def test_kind_breaks_time_ties(self):
        """At one instant: departures, then rate changes, then samples."""
        q = EventQueue()
        q.push(1.0, EventKind.SAMPLE)
        q.push(1.0, EventKind.RATE_CHANGE, 7)
        q.push(1.0, EventKind.DEPARTURE, 8)
        kinds = [q.pop()[1] for _ in range(3)]
        assert kinds == [
            EventKind.DEPARTURE,
            EventKind.RATE_CHANGE,
            EventKind.SAMPLE,
        ]

    def test_fifo_within_same_time_and_kind(self):
        q = EventQueue()
        for flow_id in [10, 11, 12]:
            q.push(1.0, EventKind.RATE_CHANGE, flow_id)
        ids = [q.pop()[2] for _ in range(3)]
        assert ids == [10, 11, 12]

    def test_len(self):
        q = EventQueue()
        assert len(q) == 0
        q.push(1.0, EventKind.SAMPLE)
        assert len(q) == 1
        q.pop()
        assert len(q) == 0

    def test_peek_does_not_pop(self):
        q = EventQueue()
        q.push(5.0, EventKind.SAMPLE)
        assert q.peek_time() == 5.0
        assert len(q) == 1

    def test_empty_queue_raises(self):
        q = EventQueue()
        with pytest.raises(SimulationError):
            q.pop()
        with pytest.raises(SimulationError):
            q.peek_time()

    def test_flowless_event_id(self):
        q = EventQueue()
        q.push(1.0, EventKind.SAMPLE)
        _, kind, flow_id = q.pop()
        assert kind is EventKind.SAMPLE and flow_id == -1
