"""Tests for the vectorized discrete-time engine."""

import numpy as np
import pytest

from repro.core.controllers import CertaintyEquivalentController
from repro.core.estimators import ExponentialMemoryEstimator, MemorylessEstimator
from repro.errors import ParameterError
from repro.simulation.fast import (
    FastEngine,
    VectorMixture,
    VectorRcbr,
    VectorTrace,
    as_vector_model,
)
from repro.traffic.heterogeneous import HeterogeneousPopulation
from repro.traffic.lrd import starwars_like_source
from repro.traffic.marginals import TruncatedGaussianMarginal
from repro.traffic.rcbr import RcbrSource, paper_rcbr_source
from repro.traffic.trace import Trace, TraceSource


def make_engine(capacity=50.0, holding_time=200.0, p_ce=1e-2, memory=0.0, dt=0.1, seed=3, **kw):
    source = paper_rcbr_source()
    return FastEngine(
        model=as_vector_model(source),
        controller=CertaintyEquivalentController(capacity, p_ce),
        estimator=(
            ExponentialMemoryEstimator(memory) if memory > 0 else MemorylessEstimator()
        ),
        capacity=capacity,
        holding_time=holding_time,
        dt=dt,
        rng=np.random.default_rng(seed),
        **kw,
    )


class TestVectorModels:
    def test_rcbr_sampling(self, paper_marginal, rng):
        model = VectorRcbr(paper_marginal, correlation_time=1.0)
        rates, state = model.sample(rng, 500)
        assert rates.shape == (500,)
        assert np.all(rates > 0.0)
        assert rates.mean() == pytest.approx(model.mean, rel=0.1)

    def test_rcbr_renegotiation_fraction(self, paper_marginal, rng):
        model = VectorRcbr(paper_marginal, correlation_time=1.0)
        rates, state = model.sample(rng, 20000)
        before = rates.copy()
        active = np.ones(20000, dtype=bool)
        dt = 0.1
        model.advance(rng, rates, state, active, dt)
        changed = np.mean(before != rates)
        assert changed == pytest.approx(1.0 - np.exp(-dt), abs=0.01)

    def test_rcbr_inactive_untouched(self, paper_marginal, rng):
        model = VectorRcbr(paper_marginal, correlation_time=0.01)
        rates, state = model.sample(rng, 100)
        before = rates.copy()
        active = np.zeros(100, dtype=bool)
        model.advance(rng, rates, state, active, 1.0)
        np.testing.assert_array_equal(rates, before)

    def test_trace_advances_indices(self, rng):
        trace = Trace(rates=np.array([1.0, 2.0, 3.0]), segment_time=1.0)
        model = VectorTrace(trace)
        rates, state = model.sample(rng, 50)
        expected_next = trace.rates[(state + 1) % 3]
        active = np.ones(50, dtype=bool)
        model.advance(rng, rates, state, active, 1.0)
        np.testing.assert_allclose(rates, expected_next)

    def test_trace_requires_matching_dt(self, rng):
        trace = Trace(rates=np.array([1.0, 2.0]), segment_time=1.0)
        model = VectorTrace(trace)
        rates, state = model.sample(rng, 4)
        with pytest.raises(ParameterError):
            model.advance(rng, rates, state, np.ones(4, dtype=bool), 0.5)

    def test_mixture_moments(self, rng):
        model = VectorMixture(
            [
                TruncatedGaussianMarginal.from_cv(0.5, 0.1),
                TruncatedGaussianMarginal.from_cv(2.0, 0.1),
            ],
            [1.0, 1.0],
            [0.5, 0.5],
        )
        rates, classes = model.sample(rng, 50000)
        assert rates.mean() == pytest.approx(model.mean, rel=0.02)
        assert rates.std() == pytest.approx(model.std, rel=0.05)
        assert set(np.unique(classes)) == {0, 1}

    def test_mixture_class_dependent_redraw(self, rng):
        """Class 1 renegotiates much faster than class 0."""
        model = VectorMixture(
            [
                TruncatedGaussianMarginal.from_cv(1.0, 0.3),
                TruncatedGaussianMarginal.from_cv(1.0, 0.3),
            ],
            [100.0, 0.01],
            [0.5, 0.5],
        )
        rates, classes = model.sample(rng, 20000)
        before = rates.copy()
        active = np.ones(20000, dtype=bool)
        model.advance(rng, rates, state=classes, active=active, dt=0.1)
        changed = before != rates
        assert changed[classes == 1].mean() > 0.9
        assert changed[classes == 0].mean() < 0.01

    def test_mixture_validation(self):
        with pytest.raises(ParameterError):
            VectorMixture([], [], [])


class TestAdapter:
    def test_rcbr_adapter(self):
        src = paper_rcbr_source(correlation_time=2.0)
        model = as_vector_model(src)
        assert isinstance(model, VectorRcbr)
        assert model.correlation_time == 2.0

    def test_trace_adapter(self, rng):
        src = starwars_like_source(n_segments=128, rng=rng)
        assert isinstance(as_vector_model(src), VectorTrace)

    def test_heterogeneous_adapter(self):
        pop = HeterogeneousPopulation(
            [
                RcbrSource(TruncatedGaussianMarginal.from_cv(0.5, 0.3), 1.0),
                RcbrSource(TruncatedGaussianMarginal.from_cv(2.0, 0.3), 2.0),
            ],
            [0.5, 0.5],
        )
        model = as_vector_model(pop)
        assert isinstance(model, VectorMixture)
        assert model.mean == pytest.approx(pop.mean)

    def test_markov_source_rejected(self):
        from repro.traffic.markov import MarkovFluidSource

        src = MarkovFluidSource.two_state(
            rate_low=0.0, rate_high=1.0, up_rate=1.0, down_rate=1.0
        )
        with pytest.raises(ParameterError):
            as_vector_model(src)


class TestFastEngine:
    def test_flow_conservation(self):
        engine = make_engine()
        engine.run_until(50.0)
        assert engine.n_flows == engine.n_admitted - engine.n_departed

    def test_aggregate_consistency(self):
        engine = make_engine()
        engine.run_until(20.0)
        assert engine.aggregate_rate == pytest.approx(
            float(engine._rates.sum())
        )
        # Inactive slots must hold rate 0.
        assert np.all(engine._rates[~engine._active] == 0.0)

    def test_occupancy_near_criterion(self):
        from repro.core.admission import admissible_flow_count

        engine = make_engine(p_ce=1e-2, holding_time=50.0)
        engine.run_until(50.0)
        engine.reset_statistics()
        engine.run_until(300.0)
        src = paper_rcbr_source()
        m_star = admissible_flow_count(src.mean, src.std, 50.0, 1e-2)
        mean_flows = engine.link.demand_time / (src.mean * engine.link.observed_time)
        assert mean_flows == pytest.approx(m_star, rel=0.1)

    def test_time_and_sampling(self):
        engine = make_engine(dt=0.5, sample_period=5.0)
        engine.run_until(52.0)
        assert engine.time == pytest.approx(52.0)
        assert engine.recorder.n_samples == 10

    def test_determinism(self):
        a = make_engine(seed=9)
        b = make_engine(seed=9)
        a.run_until(25.0)
        b.run_until(25.0)
        assert a.aggregate_rate == b.aggregate_rate
        assert a.n_admitted == b.n_admitted

    def test_capacity_cap_respected(self):
        engine = make_engine(max_flows=45)
        engine.run_until(20.0)
        assert engine.n_flows <= 45

    def test_validation(self):
        with pytest.raises(ParameterError):
            make_engine(dt=0.0)
        with pytest.raises(ParameterError):
            make_engine(dt=1.0, sample_period=0.5)

    def test_reset_statistics(self):
        engine = make_engine()
        engine.run_until(10.0)
        engine.reset_statistics()
        assert engine.link.observed_time == 0.0
        assert engine.recorder.n_samples == 0
