"""Tests for the impulsive-load Monte-Carlo experiments."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.simulation.impulsive import (
    admitted_counts_mc,
    finite_holding_overflow_mc,
    steady_state_overflow_mc,
)
from repro.theory.impulsive import (
    admitted_count_distribution,
    ce_overflow_probability,
)
from repro.traffic.marginals import TruncatedGaussianMarginal


@pytest.fixture
def marginal() -> TruncatedGaussianMarginal:
    return TruncatedGaussianMarginal.from_cv(1.0, 0.3)


class TestAdmittedCounts:
    def test_matches_prop31_distribution(self, marginal, rng):
        """Empirical mean/std of M_0 vs the Prop 3.1 Gaussian limit."""
        n = 400
        counts = admitted_counts_mc(
            n=n, marginal=marginal, p_q=1e-2, n_reps=20000, rng=rng
        )
        limit = admitted_count_distribution(n, marginal.mean, marginal.std, 1e-2)
        assert counts.mean() == pytest.approx(limit.mean, rel=5e-3)
        assert counts.std(ddof=1) == pytest.approx(limit.std, rel=0.1)

    def test_counts_are_approximately_gaussian(self, marginal, rng):
        """Skewness of the limiting law vanishes with n."""
        counts = admitted_counts_mc(
            n=900, marginal=marginal, p_q=1e-2, n_reps=20000, rng=rng
        )
        z = (counts - counts.mean()) / counts.std()
        assert abs(np.mean(z**3)) < 0.25

    def test_validation(self, marginal, rng):
        with pytest.raises(ParameterError):
            admitted_counts_mc(n=1, marginal=marginal, p_q=1e-2, n_reps=5, rng=rng)


class TestSteadyStateOverflow:
    def test_sqrt2_law_conditional(self, marginal, rng):
        """Prop 3.3 at n=400."""
        result = steady_state_overflow_mc(
            n=400, marginal=marginal, p_q=1e-2, n_reps=20000, rng=rng
        )
        limit = float(ce_overflow_probability(1e-2))
        assert result.probability == pytest.approx(limit, rel=0.15)

    def test_conditional_and_raw_agree(self, marginal, rng):
        """The variance-reduced estimator must agree with raw indicator
        Monte Carlo within sampling error."""
        kw = dict(n=100, marginal=marginal, p_q=5e-2, n_reps=40000)
        smooth = steady_state_overflow_mc(rng=np.random.default_rng(1), conditional=True, **kw)
        raw = steady_state_overflow_mc(rng=np.random.default_rng(2), conditional=False, **kw)
        tol = 4.0 * (smooth.std_error + raw.std_error) + 0.15 * raw.probability
        assert abs(smooth.probability - raw.probability) < tol

    def test_far_exceeds_target(self, marginal, rng):
        result = steady_state_overflow_mc(
            n=400, marginal=marginal, p_q=1e-3, n_reps=5000, rng=rng
        )
        assert result.probability > 10.0 * 1e-3

    def test_stderr_positive(self, marginal, rng):
        result = steady_state_overflow_mc(
            n=100, marginal=marginal, p_q=1e-2, n_reps=100, rng=rng
        )
        assert result.std_error > 0.0
        assert result.n_reps == 100


class TestFiniteHolding:
    def test_curve_shape(self, marginal, rng):
        """Zero at t=0, positive peak, decays to ~0."""
        times = np.array([0.0, 0.5, 2.0, 5.0, 20.0, 200.0])
        curve = finite_holding_overflow_mc(
            n=100,
            marginal=marginal,
            p_q=2e-2,
            holding_time=500.0,
            correlation_time=1.0,
            times=times,
            n_reps=8000,
            rng=rng,
        )
        assert curve[0] == 0.0
        assert curve.max() > 0.01
        assert curve[-1] <= 0.001

    def test_tracks_eqn21(self, marginal, rng):
        """MC vs theory at the peak region, generous tolerance (eqn (21) is
        an asymptotic approximation)."""
        from repro.theory.finite_holding import overflow_probability_curve

        times = np.array([1.0, 3.0, 8.0])
        n = 400
        holding = 50.0 * 20.0  # T_h_tilde = 50
        mc = finite_holding_overflow_mc(
            n=n,
            marginal=marginal,
            p_q=2e-2,
            holding_time=holding,
            correlation_time=1.0,
            times=times,
            n_reps=40000,
            rng=rng,
        )
        theory = overflow_probability_curve(
            times,
            p_q=2e-2,
            snr=marginal.std / marginal.mean,
            holding_time_scaled=50.0,
            correlation_time=1.0,
        )
        for sim, th in zip(mc, theory):
            assert sim == pytest.approx(th, rel=0.5, abs=5e-3)

    def test_validation(self, marginal, rng):
        with pytest.raises(ParameterError):
            finite_holding_overflow_mc(
                n=100,
                marginal=marginal,
                p_q=1e-2,
                holding_time=0.0,
                correlation_time=1.0,
                times=[1.0],
                n_reps=10,
                rng=rng,
            )
        with pytest.raises(ParameterError):
            finite_holding_overflow_mc(
                n=100,
                marginal=marginal,
                p_q=1e-2,
                holding_time=1.0,
                correlation_time=1.0,
                times=[-1.0],
                n_reps=10,
                rng=rng,
            )
