"""Tests for the bufferless link accounting."""

import pytest

from repro.errors import ParameterError
from repro.simulation.link import Link


class TestAccounting:
    def test_overflow_fraction(self):
        link = Link(capacity=10.0)
        link.accumulate(12.0, 1.0)  # overloaded
        link.accumulate(8.0, 3.0)  # fine
        assert link.overflow_fraction == pytest.approx(0.25)

    def test_boundary_is_not_overload(self):
        link = Link(capacity=10.0)
        assert not link.is_overloaded(10.0)
        assert link.is_overloaded(10.0 + 1e-9)

    def test_utilization_caps_at_capacity(self):
        link = Link(capacity=10.0)
        link.accumulate(20.0, 1.0)
        assert link.mean_utilization == pytest.approx(1.0)

    def test_utilization_mixed(self):
        link = Link(capacity=10.0)
        link.accumulate(5.0, 1.0)
        link.accumulate(15.0, 1.0)
        assert link.mean_utilization == pytest.approx(0.75)

    def test_demand_integral_uncapped(self):
        link = Link(capacity=10.0)
        link.accumulate(15.0, 2.0)
        assert link.demand_time == pytest.approx(30.0)

    def test_episode_counting(self):
        link = Link(capacity=10.0)
        link.accumulate(12.0, 1.0)
        link.accumulate(13.0, 1.0)  # same episode continues
        link.accumulate(8.0, 1.0)
        link.accumulate(12.0, 1.0)  # second episode
        assert link.overload_episodes == 2

    def test_zero_duration_ok(self):
        link = Link(capacity=10.0)
        link.accumulate(12.0, 0.0)
        assert link.observed_time == 0.0
        assert link.overflow_fraction == 0.0

    def test_reset(self):
        link = Link(capacity=10.0)
        link.accumulate(12.0, 1.0)
        link.reset_statistics()
        assert link.busy_time == 0.0
        assert link.observed_time == 0.0
        assert link.overload_episodes == 0

    def test_validation(self):
        with pytest.raises(ParameterError):
            Link(capacity=0.0)
        link = Link(capacity=10.0)
        with pytest.raises(ParameterError):
            link.accumulate(5.0, -1.0)
