"""Tests for replicated simulation runs."""

import math

import pytest

from repro.errors import ParameterError
from repro.simulation.replication import replicated_simulate, t_quantile_95
from repro.simulation.runner import SimulationConfig
from repro.traffic.rcbr import paper_rcbr_source

pytestmark = pytest.mark.slow


def config(**overrides) -> SimulationConfig:
    defaults = dict(
        source=paper_rcbr_source(),
        capacity=50.0,
        holding_time=100.0,
        p_ce=2e-2,
        memory=5.0,
        engine="fast",
        max_time=1500.0,
        seed=7,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestReplicatedSimulate:
    def test_pools_replications(self):
        result = replicated_simulate(config(), n_replications=3)
        assert result.n_replications == 3
        assert result.total_samples == sum(
            r.n_samples for r in result.replications
        )
        assert 0.0 <= result.overflow_probability <= 1.0
        assert math.isfinite(result.ci_halfwidth)

    def test_mean_of_replicates(self):
        result = replicated_simulate(config(), n_replications=3)
        manual = sum(
            r.overflow_probability for r in result.replications
        ) / 3.0
        assert result.overflow_probability == pytest.approx(manual)

    def test_replicates_differ(self):
        """Spawned streams must actually decorrelate the runs."""
        result = replicated_simulate(config(), n_replications=3)
        estimates = {r.time_fraction for r in result.replications}
        assert len(estimates) > 1

    def test_reproducible(self):
        a = replicated_simulate(config(), n_replications=2, base_seed=5)
        b = replicated_simulate(config(), n_replications=2, base_seed=5)
        assert a.overflow_probability == b.overflow_probability

    def test_single_replication_infinite_ci(self):
        result = replicated_simulate(config(), n_replications=1)
        assert math.isinf(result.ci_halfwidth)

    def test_validation(self):
        with pytest.raises(ParameterError):
            replicated_simulate(config(), n_replications=0)

    def test_ci_is_t_interval_of_replicates(self):
        """The half-width must be exactly t_{0.975,dof} * s / sqrt(n)."""
        import numpy as np

        result = replicated_simulate(config(), n_replications=3, base_seed=1)
        estimates = np.array(
            [r.overflow_probability for r in result.replications]
        )
        expected = t_quantile_95(2) * estimates.std(ddof=1) / math.sqrt(3)
        assert result.ci_halfwidth == pytest.approx(expected, rel=1e-9)

    def test_workers_match_sequential(self):
        """Process-pool fan-out must be bit-identical to in-process runs."""
        sequential = replicated_simulate(config(), n_replications=2, base_seed=9)
        parallel = replicated_simulate(
            config(), n_replications=2, base_seed=9, workers=2
        )
        assert parallel.overflow_probability == sequential.overflow_probability
        assert parallel.ci_halfwidth == sequential.ci_halfwidth
        assert [r.n_samples for r in parallel.replications] == [
            r.n_samples for r in sequential.replications
        ]

    def test_workers_validation(self):
        with pytest.raises(ParameterError):
            replicated_simulate(config(), n_replications=2, workers=0)


class TestTQuantile:
    #: Two-sided 95% Student-t table values (rounded to 3 decimals).
    TABLE = {
        1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
        7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228, 15: 2.131, 20: 2.086,
        30: 2.042, 60: 2.000,
    }

    @pytest.mark.parametrize("dof,expected", sorted(TABLE.items()))
    def test_matches_table(self, dof, expected):
        assert t_quantile_95(dof) == pytest.approx(expected, abs=5e-4)

    def test_gaussian_asymptote(self):
        assert t_quantile_95(1e9) == pytest.approx(1.959964, abs=1e-4)

    def test_smooth_in_dof(self):
        """Strictly decreasing and continuous across fractional dof."""
        grid = [1.0, 1.5, 2.0, 2.5, 3.0, 4.5, 10.0, 33.3, 100.0]
        values = [t_quantile_95(d) for d in grid]
        assert all(a > b for a, b in zip(values, values[1:]))
        assert t_quantile_95(2.5) == pytest.approx(
            (t_quantile_95(2.499) + t_quantile_95(2.501)) / 2.0, rel=1e-4
        )

    def test_degenerate_dof(self):
        assert math.isinf(t_quantile_95(0))
        assert math.isinf(t_quantile_95(-3))
