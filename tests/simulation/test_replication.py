"""Tests for replicated simulation runs."""

import math

import pytest

from repro.errors import ParameterError
from repro.simulation.replication import replicated_simulate
from repro.simulation.runner import SimulationConfig
from repro.traffic.rcbr import paper_rcbr_source

pytestmark = pytest.mark.slow


def config(**overrides) -> SimulationConfig:
    defaults = dict(
        source=paper_rcbr_source(),
        capacity=50.0,
        holding_time=100.0,
        p_ce=2e-2,
        memory=5.0,
        engine="fast",
        max_time=1500.0,
        seed=7,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestReplicatedSimulate:
    def test_pools_replications(self):
        result = replicated_simulate(config(), n_replications=3)
        assert result.n_replications == 3
        assert result.total_samples == sum(
            r.n_samples for r in result.replications
        )
        assert 0.0 <= result.overflow_probability <= 1.0
        assert math.isfinite(result.ci_halfwidth)

    def test_mean_of_replicates(self):
        result = replicated_simulate(config(), n_replications=3)
        manual = sum(
            r.overflow_probability for r in result.replications
        ) / 3.0
        assert result.overflow_probability == pytest.approx(manual)

    def test_replicates_differ(self):
        """Spawned streams must actually decorrelate the runs."""
        result = replicated_simulate(config(), n_replications=3)
        estimates = {r.time_fraction for r in result.replications}
        assert len(estimates) > 1

    def test_reproducible(self):
        a = replicated_simulate(config(), n_replications=2, base_seed=5)
        b = replicated_simulate(config(), n_replications=2, base_seed=5)
        assert a.overflow_probability == b.overflow_probability

    def test_single_replication_infinite_ci(self):
        result = replicated_simulate(config(), n_replications=1)
        assert math.isinf(result.ci_halfwidth)

    def test_validation(self):
        with pytest.raises(ParameterError):
            replicated_simulate(config(), n_replications=0)

    def test_ci_is_t_interval_of_replicates(self):
        """The half-width must be exactly t_{0.975,dof} * s / sqrt(n)."""
        import numpy as np

        result = replicated_simulate(config(), n_replications=3, base_seed=1)
        estimates = np.array(
            [r.overflow_probability for r in result.replications]
        )
        expected = 4.303 * estimates.std(ddof=1) / math.sqrt(3)
        assert result.ci_halfwidth == pytest.approx(expected, rel=1e-9)
