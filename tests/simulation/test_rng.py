"""Tests for randomness management."""

import numpy as np
import pytest

from repro.simulation.rng import make_rng, spawn_rngs


class TestMakeRng:
    def test_from_seed(self):
        a = make_rng(7)
        b = make_rng(7)
        assert a.random() == b.random()

    def test_passthrough(self):
        gen = np.random.default_rng(1)
        assert make_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestSpawn:
    def test_count(self):
        rngs = spawn_rngs(3, count=5)
        assert len(rngs) == 5

    def test_streams_differ(self):
        rngs = spawn_rngs(3, count=4)
        values = [g.random() for g in rngs]
        assert len(set(values)) == 4

    def test_reproducible(self):
        a = [g.random() for g in spawn_rngs(3, count=3)]
        b = [g.random() for g in spawn_rngs(3, count=3)]
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, count=0)
