"""Tests for the high-level simulation runner."""

import math

import pytest

from repro.core.baselines import PeakRateController
from repro.errors import ParameterError
from repro.simulation.runner import SimulationConfig, simulate
from repro.traffic.rcbr import paper_rcbr_source


def config(**overrides) -> SimulationConfig:
    defaults = dict(
        source=paper_rcbr_source(),
        capacity=50.0,
        holding_time=200.0,
        p_ce=1e-2,
        memory=0.0,
        engine="fast",
        max_time=2000.0,
        seed=4,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestConfig:
    def test_system_size(self):
        cfg = config()
        assert cfg.system_size == pytest.approx(50.0 / cfg.source.mean)

    def test_holding_time_scaled(self):
        cfg = config()
        assert cfg.holding_time_scaled == pytest.approx(
            200.0 / math.sqrt(cfg.system_size)
        )

    def test_sample_period_paper_rule(self):
        cfg = config(memory=50.0)
        expected = 2.0 * max(cfg.holding_time_scaled, 50.0, 1.0)
        assert cfg.resolved_sample_period() == pytest.approx(expected)

    def test_sample_period_override(self):
        assert config(sample_period=7.0).resolved_sample_period() == 7.0

    def test_requires_one_target(self):
        with pytest.raises(ParameterError):
            config(p_ce=None)
        with pytest.raises(ParameterError):
            config(alpha_ce=3.0)  # both set

    def test_controller_override_waives_target(self):
        cfg = config(p_ce=None, controller=PeakRateController(50.0, 2.0))
        assert cfg.controller is not None

    def test_rejects_bad_engine(self):
        with pytest.raises(ParameterError):
            config(engine="quantum")


class TestSimulate:
    def test_basic_run(self):
        result = simulate(config())
        assert 0.0 <= result.overflow_probability <= 1.0
        assert result.simulated_time > 0.0
        assert result.n_samples > 0
        assert result.mean_flows > 10.0
        assert 0.0 < result.mean_utilization <= 1.0

    def test_stop_reasons(self):
        result = simulate(config(max_time=500.0))
        assert result.stop_reason in ("ci", "tiny", "max_time")

    def test_tiny_regime_uses_fallback(self):
        """A very conservative target produces no overflow samples; the
        estimate must come from the Gaussian tail."""
        result = simulate(config(p_ce=1e-8, memory=20.0, max_time=3000.0))
        assert result.used_gaussian_fallback
        assert result.overflow_probability < 1e-3

    def test_event_engine_path(self):
        result = simulate(config(engine="event", max_time=300.0))
        assert result.config_notes["engine"] == "event"
        assert result.n_samples > 0

    def test_alpha_ce_configuration(self):
        from repro.core.gaussian import q_inverse

        r1 = simulate(config(p_ce=None, alpha_ce=q_inverse(1e-2)))
        r2 = simulate(config())
        assert r1.overflow_probability == pytest.approx(
            r2.overflow_probability, rel=1e-9
        )

    def test_reproducibility(self):
        a = simulate(config())
        b = simulate(config())
        assert a.overflow_probability == b.overflow_probability
        assert a.time_fraction == b.time_fraction

    def test_custom_controller(self):
        result = simulate(
            config(p_ce=None, controller=PeakRateController(50.0, 1.9))
        )
        # Peak allocation: ~26 flows of mean 1 on a 50-capacity link.
        assert result.mean_flows == pytest.approx(26.0, abs=1.5)
        assert result.overflow_probability < 1e-6

    def test_trace_source_infers_dt(self, rng):
        from repro.traffic.lrd import starwars_like_source

        src = starwars_like_source(n_segments=1024, rng=rng)
        result = simulate(
            SimulationConfig(
                source=src,
                capacity=30.0 * src.mean,
                holding_time=200.0,
                p_ce=1e-2,
                engine="fast",
                max_time=1000.0,
                seed=1,
            )
        )
        assert result.n_samples > 0

    def test_max_time_respected(self):
        result = simulate(config(max_time=400.0, p_ce=1e-9, memory=10.0,
                                 p_q=1e-12))
        # p_q so tiny that neither criterion can fire => max_time stop.
        assert result.stop_reason == "max_time"
        assert result.simulated_time <= 500.0 + result.config_notes["warmup"]
