"""Tests for the overflow statistics and the paper's termination rules."""

import math

import pytest

from repro.errors import ParameterError
from repro.simulation.stats import (
    BatchMeans,
    OverflowRecorder,
    TerminationRule,
)


class TestOverflowRecorder:
    def test_counts(self):
        rec = OverflowRecorder(capacity=10.0)
        for value in [8.0, 12.0, 9.0, 11.0]:
            rec.record(value)
        assert rec.n_samples == 4
        assert rec.mean == pytest.approx(0.5)

    def test_ci_shrinks(self):
        rec = OverflowRecorder(capacity=10.0)
        widths = []
        for k in range(1000):
            rec.record(12.0 if k % 10 == 0 else 8.0)
            if rec.n_samples in (100, 1000):
                widths.append(rec.ci_halfwidth())
        assert widths[1] < widths[0]

    def test_ci_infinite_before_two_samples(self):
        rec = OverflowRecorder(capacity=10.0)
        assert math.isinf(rec.ci_halfwidth())
        rec.record(5.0)
        assert math.isinf(rec.ci_halfwidth())

    def test_gaussian_tail_estimate(self):
        """Samples drawn at mean 8, std ~2 on a capacity-10 link must give
        ~Q(1)."""
        from repro.core.gaussian import q_function

        rec = OverflowRecorder(capacity=10.0)
        for value in [6.0, 10.0, 8.0, 8.0]:  # mean 8, population std sqrt(2)
            rec.record(value)
        expected = q_function((10.0 - 8.0) / math.sqrt(2.0))
        assert rec.gaussian_tail_estimate() == pytest.approx(expected)

    def test_gaussian_tail_degenerate(self):
        rec = OverflowRecorder(capacity=10.0)
        rec.record(8.0)
        rec.record(8.0)
        assert rec.gaussian_tail_estimate() == 0.0

    def test_gaussian_tail_needs_samples(self):
        rec = OverflowRecorder(capacity=10.0)
        with pytest.raises(ParameterError):
            rec.gaussian_tail_estimate()

    def test_merge(self):
        a = OverflowRecorder(capacity=10.0)
        b = OverflowRecorder(capacity=10.0)
        a.record(12.0)
        b.record(8.0)
        b.record(9.0)
        a.merge(b)
        assert a.n_samples == 3
        assert a.mean == pytest.approx(1.0 / 3.0)

    def test_merge_rejects_mismatched_links(self):
        a = OverflowRecorder(capacity=10.0)
        b = OverflowRecorder(capacity=20.0)
        with pytest.raises(ParameterError):
            a.merge(b)


class TestBatchMeans:
    def test_splits_across_batches(self):
        bm = BatchMeans(batch_duration=1.0)
        bm.add(2.5, overloaded=True)  # fills 2 batches, half of a third
        assert bm.n_batches == 2
        assert bm.mean == pytest.approx(1.0)

    def test_mixed_fractions(self):
        bm = BatchMeans(batch_duration=2.0)
        bm.add(1.0, overloaded=True)
        bm.add(1.0, overloaded=False)  # batch 1: 50%
        bm.add(2.0, overloaded=False)  # batch 2: 0%
        assert bm.n_batches == 2
        assert bm.mean == pytest.approx(0.25)

    def test_ci_requires_two_batches(self):
        bm = BatchMeans(batch_duration=10.0)
        bm.add(5.0, overloaded=True)
        assert math.isinf(bm.ci_halfwidth())

    def test_ci_zero_for_identical_batches(self):
        bm = BatchMeans(batch_duration=1.0)
        bm.add(4.0, overloaded=True)
        assert bm.ci_halfwidth() == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ParameterError):
            BatchMeans(batch_duration=0.0)
        bm = BatchMeans(batch_duration=1.0)
        with pytest.raises(ParameterError):
            bm.add(-1.0, overloaded=False)


class TestTerminationRule:
    def make_recorder(self, hits: int, total: int) -> OverflowRecorder:
        rec = OverflowRecorder(capacity=10.0)
        for k in range(total):
            rec.record(12.0 if k < hits else 8.0)
        return rec

    def test_holds_until_min_samples(self):
        rule = TerminationRule(p_target=1e-2, min_samples=50)
        rec = self.make_recorder(hits=10, total=20)
        assert not rule.evaluate(rec).stop

    def test_ci_criterion(self):
        """Criterion (a): tight CI around a positive mean stops the run."""
        rule = TerminationRule(p_target=1e-2)
        rec = self.make_recorder(hits=500, total=5000)
        decision = rule.evaluate(rec)
        assert decision.stop and decision.reason == "ci"
        assert decision.estimate == pytest.approx(0.1)
        assert not decision.used_gaussian_fallback

    def test_tiny_criterion_uses_fallback(self):
        """Criterion (b): all-clear samples two orders below target stop
        with the Gaussian-tail estimate."""
        rule = TerminationRule(p_target=1e-2)
        rec = OverflowRecorder(capacity=100.0)
        for k in range(200):
            rec.record(50.0 + (k % 5))  # far below capacity, some spread
        decision = rule.evaluate(rec)
        assert decision.stop and decision.reason == "tiny"
        assert decision.used_gaussian_fallback
        assert decision.estimate < 1e-10

    def test_continue_between_criteria(self):
        """Some hits but too noisy: neither criterion fires."""
        rule = TerminationRule(p_target=1e-2)
        rec = self.make_recorder(hits=3, total=100)
        decision = rule.evaluate(rec)
        assert not decision.stop and decision.reason == "continue"

    def test_validation(self):
        with pytest.raises(ParameterError):
            TerminationRule(p_target=0.0)
        with pytest.raises(ParameterError):
            TerminationRule(p_target=1e-3, rel_halfwidth=0.0)
