"""Unit tests for counter samples, rate estimation, and the synthetic source."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ParameterError, TelemetryError
from repro.telemetry import (
    COUNTER_WIDTHS,
    CounterSample,
    RateEstimator,
    SyntheticCounterSource,
)
from repro.traffic.rcbr import paper_rcbr_source


class TestCounterSample:
    def test_valid_sample_coerces_types(self):
        sample = CounterSample(t=1, bytes=np.int64(100), packets=2)
        assert sample.t == 1.0 and isinstance(sample.t, float)
        assert sample.bytes == 100 and isinstance(sample.bytes, int)
        assert sample.packets == 2

    def test_packets_default_to_zero(self):
        assert CounterSample(t=0.0, bytes=5).packets == 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"t": math.nan, "bytes": 0},
            {"t": math.inf, "bytes": 0},
            {"t": "now", "bytes": 0},
            {"t": True, "bytes": 0},
            {"t": 0.0, "bytes": -1},
            {"t": 0.0, "bytes": 1.5},
            {"t": 0.0, "bytes": True},
            {"t": 0.0, "bytes": 0, "packets": -2},
            {"t": 0.0, "bytes": 0, "packets": "many"},
        ],
    )
    def test_rejects_malformed_fields(self, kwargs):
        with pytest.raises(TelemetryError):
            CounterSample(**kwargs)


class TestRateEstimator:
    def test_rejects_bad_construction(self):
        with pytest.raises(ParameterError):
            RateEstimator(width=48)
        with pytest.raises(ParameterError):
            RateEstimator(max_rate=0.0)
        with pytest.raises(ParameterError):
            RateEstimator(max_rate=math.inf)

    def test_first_sample_anchors_without_a_rate(self):
        estimator = RateEstimator()
        assert not estimator.anchored
        assert estimator.update(0.0, 100) is None
        assert estimator.anchored
        assert estimator.updates == 1

    def test_clean_deltas_divide_by_actual_elapsed_time(self):
        estimator = RateEstimator()
        estimator.update(0.0, 0)
        assert estimator.update(1.0, 500) == pytest.approx(500.0)
        # A lost poll just widens the interval; the rate stays exact.
        assert estimator.update(3.5, 1750) == pytest.approx(500.0)

    @pytest.mark.parametrize("width", COUNTER_WIDTHS)
    def test_wrap_around_recovers_the_true_delta(self, width):
        modulus = 1 << width
        estimator = RateEstimator(width=width)
        estimator.update(0.0, modulus - 100)
        rate = estimator.update(1.0, 400)  # true delta: 500 through the wrap
        assert rate == pytest.approx(500.0)
        assert estimator.snapshot()["wraps"] == 1

    def test_reset_yields_no_rate_and_reanchors(self):
        estimator = RateEstimator(width=32)
        estimator.update(0.0, 10_000)
        estimator.update(1.0, 20_000)
        # Reboot: counter restarts near zero, far from the wrap point.
        assert estimator.update(2.0, 50) is None
        assert estimator.snapshot()["resets"] == 1
        # The reset re-anchored; the next delta is a clean rate again.
        assert estimator.update(3.0, 1_050) == pytest.approx(1_000.0)

    def test_max_rate_sharpens_wrap_vs_reset(self):
        # Positionally this negative delta looks like a reset (previous
        # value nowhere near the top), but with a declared line rate the
        # wrapped delta is the only plausible reading.
        modulus = 1 << 32
        wrap = RateEstimator(width=32, max_rate=1e6)
        wrap.update(0.0, 100)
        assert wrap.update(1.0, 50) is None  # wrapped delta ~2**32: reset
        assert wrap.snapshot()["resets"] == 1
        near_top = RateEstimator(width=32, max_rate=1e6)
        near_top.update(0.0, modulus - 1000)
        assert near_top.update(1.0, 0) == pytest.approx(1000.0)
        assert near_top.snapshot()["wraps"] == 1

    def test_positional_heuristic_without_max_rate(self):
        modulus = 1 << 32
        estimator = RateEstimator(width=32)
        # Previous value in the top quarter + small wrapped delta: a wrap.
        estimator.update(0.0, modulus - 10)
        assert estimator.update(1.0, 90) == pytest.approx(100.0)
        # Previous value mid-range: a negative delta must be a reset.
        estimator.update(2.0, modulus // 2)
        assert estimator.update(3.0, 100) is None
        assert estimator.snapshot() == {
            "updates": 4, "wraps": 1, "resets": 1,
            "duplicates": 0, "out_of_order": 0, "invalid": 0,
        }

    def test_duplicate_and_out_of_order_polls_are_absorbed(self):
        estimator = RateEstimator()
        estimator.update(5.0, 1000)
        assert estimator.update(5.0, 1000) is None  # duplicated response
        assert estimator.update(4.0, 900) is None   # late reordered response
        assert estimator.update(6.0, 1500) == pytest.approx(500.0)
        snapshot = estimator.snapshot()
        assert snapshot["duplicates"] == 1 and snapshot["out_of_order"] == 1

    def test_implausible_rate_poisons_one_interval_not_the_stream(self):
        estimator = RateEstimator(max_rate=100.0)
        estimator.update(0.0, 0)
        with pytest.raises(TelemetryError):
            estimator.update(1.0, 10_000)  # 100x the declared line rate
        assert estimator.snapshot()["invalid"] == 1
        # The poisoned sample still re-anchored the stream.
        assert estimator.update(2.0, 10_050) == pytest.approx(50.0)

    def test_value_outside_width_rejected(self):
        estimator = RateEstimator(width=32)
        with pytest.raises(TelemetryError):
            estimator.update(0.0, 1 << 32)
        with pytest.raises(TelemetryError):
            estimator.update(0.0, -1)
        with pytest.raises(TelemetryError):
            estimator.update(0.0, 1.5)
        with pytest.raises(TelemetryError):
            estimator.update(math.nan, 0)
        assert estimator.snapshot()["invalid"] == 4

    def test_update_sample_uses_the_byte_counter(self):
        estimator = RateEstimator()
        estimator.update_sample(CounterSample(t=0.0, bytes=0, packets=0))
        rate = estimator.update_sample(CounterSample(t=2.0, bytes=800, packets=9))
        assert rate == pytest.approx(400.0)


class TestSyntheticCounterSource:
    def make(self, **kwargs):
        kwargs.setdefault("seed", 7)
        kwargs.setdefault("bytes_per_unit", 1e6)
        return SyntheticCounterSource(paper_rcbr_source(), **kwargs)

    def test_validation(self):
        with pytest.raises(ParameterError):
            self.make(width=16)
        with pytest.raises(ParameterError):
            self.make(bytes_per_unit=0.0)
        with pytest.raises(ParameterError):
            self.make(initial=-1)

    def test_counters_are_cumulative_and_deltas_match_held_rates(self):
        source = self.make()
        first = source.poll(0.0, 3)
        assert len(first) == 3
        second = source.poll(1.0, 3)
        assert set(second) == set(first)
        for key in first:
            delta = second[key].bytes - first[key].bytes
            assert delta >= 0
            # Rates come from the paper's RCBR marginal (units of 1e6 B/s).
            assert delta <= 50 * 1e6

    def test_departures_release_slots_and_arrivals_mint_fresh_keys(self):
        source = self.make()
        keys3 = set(source.poll(0.0, 3))
        keys1 = set(source.poll(1.0, 1))
        assert len(keys1) == 1 and keys1 < keys3
        keys2 = set(source.poll(2.0, 2))
        # The new slot gets a never-before-seen key: no estimator aliasing.
        assert len(keys2 - keys3) == 1

    def test_same_seed_same_counters(self):
        a, b = self.make(), self.make()
        for t in (0.0, 1.0, 2.5):
            assert a.poll(t, 4) == b.poll(t, 4)

    def test_reset_counters_zeroes_levels(self):
        source = self.make()
        source.poll(0.0, 2)
        source.poll(5.0, 2)
        assert source.reset_counters() == 2
        after = source.poll(6.0, 2)
        # One epoch's worth of bytes at most, counted from zero.
        assert all(s.bytes <= 50 * 1e6 for s in after.values())

    def test_jump_near_wrap_forces_rollover(self):
        source = self.make(width=32)
        source.poll(0.0, 2)
        assert source.jump_near_wrap(1000) == 2
        with pytest.raises(ParameterError):
            source.jump_near_wrap(0)
        wrapped = source.poll(10.0, 2)  # plenty of bytes to cross the wrap
        assert all(s.bytes < (1 << 32) for s in wrapped.values())
        # New slots minted after the jump also start near the wrap point.
        grown = source.poll(10.5, 3)
        assert len(grown) == 3
