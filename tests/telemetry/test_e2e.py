"""End-to-end acceptance: counter-only admission under wrap+reset chaos.

The ISSUE's tentpole scenario as a regression test: a seeded replay run
in which every admission decision is derived *only* from polled
cumulative counters (no oracle rates anywhere), while the chaos plan
forces counter resets on one link and a wrap-straddling offset on
another.  The paper's robustness bound must survive the measurement
plane: the realized overflow fraction stays within the engineered bound,
and the decision digest is byte-identical across reruns.
"""

from __future__ import annotations

from repro.runtime.faults import default_chaos_plan
from repro.runtime.gateway import AdmissionGateway
from repro.runtime.link import ManagedLink
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.replay import replay
from repro.telemetry import CounterPollerFeed, SyntheticCounterSource
from repro.traffic.rcbr import paper_rcbr_source

N = 30.0
HOLDING_TIME = 100.0
P_Q = 1e-2
BYTES_PER_UNIT = 1e6
# The bound chaos-replay enforces: an order of magnitude of headroom over
# p_q, because fault windows deliberately starve the measurement plane.
OVERFLOW_BOUND = 4e-2


def make_counter_gateway(seed=0, n_links=2, width=32):
    """Links measured exclusively through 32-bit polled counters."""
    registry = MetricsRegistry()
    links = []
    for i in range(n_links):
        source = paper_rcbr_source()
        counter_source = SyntheticCounterSource(
            source, seed=seed * 1000 + i, width=width,
            bytes_per_unit=BYTES_PER_UNIT,
        )
        feed = CounterPollerFeed(
            counter_source, 1.0, width=width,
            max_rate=50.0 * BYTES_PER_UNIT, rate_scale=BYTES_PER_UNIT,
        )
        links.append(
            ManagedLink.build(
                f"link{i}",
                capacity=N * source.mean,
                holding_time=HOLDING_TIME,
                mean_rate=source.mean,
                feed=feed,
                p_q=P_Q,
                snr=0.3,
                correlation_time=1.0,
                registry=registry,
            )
        )
    return AdmissionGateway(links, registry=registry)


def run_chaos(seed=0):
    plan = default_chaos_plan(
        ["link0", "link1"], period=1.0, seed=seed, counters=True
    )
    gateway = make_counter_gateway(seed=seed)
    report = replay(
        gateway,
        n_events=12_000,
        arrival_rate=1.3 * 2 * N / HOLDING_TIME,
        holding_time=HOLDING_TIME,
        tick_period=1.0,
        seed=seed,
        fault_plan=plan,
        collect_digest=True,
    )
    return report, gateway


class TestCounterOnlyChaosRun:
    def test_overflow_bound_survives_wraps_and_resets(self):
        report, gateway = run_chaos(seed=0)
        assert report.admitted > 0, "counter-derived rates must admit flows"
        assert report.overflow_fraction <= OVERFLOW_BOUND
        # The chaos plan actually bit: resets fired on link0's counters
        # and link1's offset forced wrap-arounds through the estimators.
        summary = report.fault_summary
        assert summary["link0"]["counter_resets"] >= 1
        assert summary["link1"]["counter_offset"] >= 1
        snapshots = {
            link.name: link.feed.inner.telemetry_snapshot()
            for link in gateway.links
        }
        assert snapshots["link0"]["resets"] >= 1
        assert snapshots["link1"]["wraps"] >= 1

    def test_digest_is_identical_across_reruns(self):
        first, _ = run_chaos(seed=1)
        second, _ = run_chaos(seed=1)
        assert first.decision_digest is not None
        assert first.decision_digest == second.decision_digest
        assert (first.admitted, first.rejected) == (
            second.admitted, second.rejected
        )
