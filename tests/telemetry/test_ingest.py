"""IngestFeed: pushed counter samples drained at the measurement cadence."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.runtime.health import section_problem
from repro.telemetry import AGGREGATE_STREAM, CounterSample, IngestFeed


def push_pair(feed, stream, t0, b0, t1, b1):
    feed.push(CounterSample(t=t0, bytes=b0), stream=stream)
    feed.push(CounterSample(t=t1, bytes=b1), stream=stream)


class TestIngestFeed:
    def test_validation(self):
        with pytest.raises(ParameterError):
            IngestFeed(1.0, width=48)
        with pytest.raises(ParameterError):
            IngestFeed(1.0, rate_scale=-1.0)
        with pytest.raises(ParameterError):
            IngestFeed(1.0, max_buffer=0)
        with pytest.raises(ParameterError):
            IngestFeed(1.0, expire_after=0.0)

    def test_per_flow_streams_form_a_cross_section(self):
        feed = IngestFeed(1.0)
        push_pair(feed, "f1", 0.0, 0, 1.0, 300)
        push_pair(feed, "f2", 0.0, 1000, 1.0, 1500)
        section = feed.measure(1.0, 2)
        assert section.n == 2
        assert section.mean == pytest.approx((300.0 + 500.0) / 2.0)

    def test_aggregate_stream_spreads_over_occupancy(self):
        feed = IngestFeed(1.0)
        push_pair(feed, None, 0.0, 0, 1.0, 900)
        section = feed.measure(1.0, 3)
        assert section.n == 3
        assert section.mean == pytest.approx(300.0)
        assert section.variance == 0.0

    def test_per_flow_streams_take_precedence_over_aggregate(self):
        feed = IngestFeed(1.0)
        push_pair(feed, None, 0.0, 0, 1.0, 9000)
        push_pair(feed, "f1", 0.0, 0, 1.0, 250)
        section = feed.measure(1.0, 1)
        assert section.n == 1
        assert section.mean == pytest.approx(250.0)

    def test_no_fresh_samples_means_no_section(self):
        feed = IngestFeed(1.0)
        assert feed.measure(1.0, 2) is None          # nothing pushed
        feed.push(CounterSample(t=2.0, bytes=0), stream="f1")
        assert feed.measure(2.0, 2) is None          # baseline only

    def test_future_dated_samples_wait_for_their_epoch(self):
        feed = IngestFeed(1.0)
        push_pair(feed, "f1", 0.0, 0, 5.0, 500)
        assert feed.measure(1.0, 1) is None  # the t=5 sample is held
        section = feed.measure(5.0, 1)
        assert section.mean == pytest.approx(100.0)

    def test_rate_scale_recovers_abstract_units(self):
        feed = IngestFeed(1.0, rate_scale=1e6)
        push_pair(feed, "f1", 0.0, 0, 1.0, 2_000_000)
        assert feed.measure(1.0, 1).mean == pytest.approx(2.0)

    def test_buffer_cap_drops_oldest(self):
        feed = IngestFeed(1.0, max_buffer=2)
        for i in range(4):
            feed.push(CounterSample(t=float(i), bytes=100 * i), stream="f1")
        assert feed.dropped == 2 and feed.pushed == 4
        section = feed.measure(4.0, 1)  # only the t=2,3 samples survived
        assert section.mean == pytest.approx(100.0)

    def test_corrupted_stream_emits_poisoned_section(self):
        feed = IngestFeed(1.0, width=32)
        push_pair(feed, "f1", 0.0, 0, 1.0, 1 << 40)
        poisoned = feed.measure(1.0, 1)
        assert section_problem(poisoned) is not None
        assert feed.poisoned_sections == 1

    def test_implausible_rate_poisons_with_max_rate(self):
        feed = IngestFeed(1.0, max_rate=100.0)
        push_pair(feed, "f1", 0.0, 0, 1.0, 10_000)
        assert section_problem(feed.measure(1.0, 1)) is not None

    def test_stale_streams_expire(self):
        feed = IngestFeed(1.0, expire_after=2.0)
        push_pair(feed, "f1", 0.0, 0, 1.0, 100)
        feed.measure(1.0, 1)
        for t in (2.0, 3.0, 4.0):
            feed.measure(t, 1)
        assert feed.telemetry_snapshot()["streams"] == 0

    def test_snapshot_counts_events(self):
        feed = IngestFeed(1.0)
        push_pair(feed, "f1", 0.0, 0, 1.0, 100)
        feed.push(CounterSample(t=1.0, bytes=100), stream="f1")  # duplicate
        feed.measure(1.0, 1)
        snapshot = feed.telemetry_snapshot()
        assert snapshot["pushed"] == 3
        assert snapshot["updates"] == 3
        assert snapshot["duplicates"] == 1
        assert snapshot["buffered"] == 0

    def test_aggregate_key_is_reserved(self):
        feed = IngestFeed(1.0)
        feed.push(CounterSample(t=0.0, bytes=0), stream=AGGREGATE_STREAM)
        feed.push(CounterSample(t=1.0, bytes=600), stream=None)
        section = feed.measure(1.0, 2)  # both pushes hit the same stream
        assert section.mean == pytest.approx(300.0)
