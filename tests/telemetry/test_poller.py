"""CounterPollerFeed: rates from polled counters + health composition."""

from __future__ import annotations

import math

import pytest

from repro.core.controllers import CertaintyEquivalentController
from repro.core.estimators import MemorylessEstimator
from repro.errors import ParameterError
from repro.runtime.health import LinkHealth, section_problem
from repro.runtime.link import ManagedLink
from repro.runtime.metrics import MetricsRegistry
from repro.telemetry import (
    CounterPollerFeed,
    CounterSample,
    CounterSource,
    SyntheticCounterSource,
    poison_section,
)
from repro.traffic.rcbr import paper_rcbr_source

BYTES_PER_UNIT = 1e6


class ScriptedSource(CounterSource):
    """Replays a fixed script of poll results (a list per call)."""

    def __init__(self, script):
        self.script = list(script)
        self.polls = 0

    def poll(self, now, n_flows):
        self.polls += 1
        if not self.script:
            return {}
        return self.script.pop(0)


def synthetic_feed(period=1.0, seed=11, width=64, **kwargs):
    source = SyntheticCounterSource(
        paper_rcbr_source(), seed=seed, width=width,
        bytes_per_unit=BYTES_PER_UNIT,
    )
    return CounterPollerFeed(
        source, period, width=width, rate_scale=BYTES_PER_UNIT, **kwargs
    )


class TestPoisonSection:
    def test_fails_section_validation(self):
        section = poison_section(5)
        assert section.n == 5
        assert section_problem(section) is not None
        assert poison_section(-3).n == 0


class TestCounterPollerFeed:
    def test_validation(self):
        source = ScriptedSource([])
        with pytest.raises(ParameterError):
            CounterPollerFeed(source, 1.0, width=12)
        with pytest.raises(ParameterError):
            CounterPollerFeed(source, 1.0, rate_scale=0.0)
        with pytest.raises(ParameterError):
            CounterPollerFeed(source, 1.0, expire_after=-1.0)

    def test_first_epoch_baselines_then_rates_flow(self):
        feed = synthetic_feed()
        assert feed.measure(0.0, 4) is None  # baselines only: age, don't lie
        section = feed.measure(1.0, 4)
        assert section is not None and section.n == 4
        assert math.isfinite(section.mean) and section.mean > 0.0
        # Rates are scaled back into the source's abstract units.
        assert section.mean < 50.0

    def test_rates_match_scripted_deltas(self):
        script = [
            {"a": CounterSample(t=0.0, bytes=0),
             "b": CounterSample(t=0.0, bytes=1000)},
            {"a": CounterSample(t=2.0, bytes=600),
             "b": CounterSample(t=2.0, bytes=1800)},
        ]
        feed = CounterPollerFeed(ScriptedSource(script), 1.0)
        assert feed.measure(0.0, 2) is None
        section = feed.measure(2.0, 2)
        assert section.n == 2
        assert section.mean == pytest.approx((300.0 + 400.0) / 2.0)

    def test_idle_link_is_a_real_empty_measurement(self):
        feed = CounterPollerFeed(ScriptedSource([{}, {}]), 1.0)
        section = feed.measure(0.0, 0)
        assert section is not None and section.n == 0
        assert section_problem(section) is None

    def test_reset_interval_ages_instead_of_lying(self):
        script = [
            {"a": CounterSample(t=0.0, bytes=5000)},
            {"a": CounterSample(t=1.0, bytes=100)},   # reset: no rate
            {"a": CounterSample(t=2.0, bytes=700)},   # clean again
        ]
        feed = CounterPollerFeed(ScriptedSource(script), 1.0)
        assert feed.measure(0.0, 1) is None
        assert feed.measure(1.0, 1) is None
        section = feed.measure(2.0, 1)
        assert section.mean == pytest.approx(600.0)
        assert feed.telemetry_snapshot()["resets"] == 1

    def test_invalid_stream_emits_poisoned_section(self):
        script = [
            {"a": CounterSample(t=0.0, bytes=0)},
            {"a": CounterSample(t=1.0, bytes=1 << 40)},  # beyond 32-bit width
        ]
        feed = CounterPollerFeed(ScriptedSource(script), 1.0, width=32)
        assert feed.measure(0.0, 1) is None
        poisoned = feed.measure(1.0, 1)
        assert poisoned is not None and section_problem(poisoned) is not None
        assert feed.poisoned_sections == 1

    def test_departed_streams_expire_and_keep_their_stats(self):
        script = [
            {"a": CounterSample(t=0.0, bytes=0)},
            {"a": CounterSample(t=1.0, bytes=100)},
        ] + [{} for _ in range(6)]
        feed = CounterPollerFeed(ScriptedSource(script), 1.0, expire_after=2.0)
        feed.measure(0.0, 1)
        feed.measure(1.0, 1)
        for t in (2.0, 3.0, 4.0):
            feed.measure(t, 0)
        snapshot = feed.telemetry_snapshot()
        assert snapshot["streams"] == 0
        assert snapshot["updates"] == 2  # retired stats are not lost

    def test_chaos_hooks_delegate_to_the_source(self):
        feed = synthetic_feed(width=32)
        feed.measure(0.0, 2)
        assert feed.reset_counters() == 2
        assert feed.jump_near_wrap(1 << 10) == 2


class TestHealthComposition:
    """The poller is a real MeasurementFeed: DEGRADED/QUARANTINED compose."""

    def make_link(self, feed, capacity=20.0, stale_horizon=5.0):
        return ManagedLink(
            "tlink",
            capacity=capacity,
            holding_time=100.0,
            mean_rate=1.0,
            feed=feed,
            estimator=MemorylessEstimator(),
            controller=CertaintyEquivalentController(capacity, 0.05),
            conservative_controller=CertaintyEquivalentController(
                capacity, alpha=3.0
            ),
            stale_horizon=stale_horizon,
            registry=MetricsRegistry(),
        )

    def test_healthy_on_fresh_counters(self):
        link = self.make_link(synthetic_feed())
        link.tick(0.0)
        assert link.admit(0.5).admitted
        link.tick(1.0)
        link.tick(2.0)
        assert link.health is LinkHealth.HEALTHY

    def test_silent_counter_plane_degrades(self):
        # After the baseline epoch the source never answers again: no
        # sections, staleness grows, the link degrades (not quarantines).
        script = [{"a": CounterSample(t=0.0, bytes=0)},
                  {"a": CounterSample(t=1.0, bytes=500)}]
        # rate_scale recovers unit rates, so the admission target is roomy.
        feed = CounterPollerFeed(ScriptedSource(script), 1.0, rate_scale=500.0)
        link = self.make_link(feed)
        link.tick(0.0)
        link.tick(1.0)
        assert link.admit(1.5).admitted  # occupancy > 0: silence is an outage
        assert link.health is LinkHealth.HEALTHY
        for t in (2.0, 3.0, 4.0, 5.0, 6.0, 7.0):
            link.tick(float(t))
        assert link.health is LinkHealth.DEGRADED
        assert not link.quarantined

    def test_corrupted_counter_stream_quarantines(self):
        script = [{"a": CounterSample(t=0.0, bytes=0)}] + [
            {"a": CounterSample(t=float(t), bytes=1 << 40)}
            for t in range(1, 10)
        ]
        feed = CounterPollerFeed(ScriptedSource(script), 1.0, width=32)
        link = self.make_link(feed)
        for t in range(8):
            link.tick(float(t))
        assert link.quarantined
        decision = link.admit(8.0)
        assert not decision.admitted and decision.reason == "quarantined"
        assert feed.poisoned_sections >= 3
