"""Property-based tests (hypothesis) for the counter rate estimator.

The property the whole telemetry layer leans on: whatever mix of wraps,
resets, duplicated polls, and scheduling jitter a counter stream throws
at it, :class:`~repro.telemetry.counters.RateEstimator` never emits a
rate that is non-finite, negative, or above the declared ceiling -- and
on *clean* intervals (a plain monotone delta, wrapped or not) it returns
exactly the true transferred bytes over the true elapsed time.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry import RateEstimator

WIDTH = 32
MODULUS = 1 << WIDTH
MAX_RATE = 2e6  # declared ceiling, well above any generated true rate

# One scripted poll event:
#   ("advance", dt, rate)  -- dt elapses, rate*dt bytes move (clean)
#   ("reset", level)       -- device reboot to a small absolute level
#   ("duplicate",)         -- the previous response arrives again
advance = st.tuples(
    st.just("advance"),
    st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
)
reset = st.tuples(st.just("reset"), st.integers(min_value=0, max_value=10_000))
duplicate = st.tuples(st.just("duplicate"))
events = st.lists(
    st.one_of(advance, reset, duplicate), min_size=1, max_size=60
)


@settings(max_examples=200, deadline=None)
@given(
    events=events,
    start=st.integers(min_value=0, max_value=MODULUS - 1),
)
def test_estimated_rates_are_sane_and_exact_on_clean_intervals(events, start):
    estimator = RateEstimator(width=WIDTH, max_rate=MAX_RATE)
    t = 0.0
    absolute = start  # true cumulative bytes (never wraps; exposure does)
    estimator.update(t, absolute % MODULUS)
    last_t, last_absolute = t, absolute
    clean_since_last = True  # no reset between the anchor and now

    for event in events:
        if event[0] == "advance":
            _, dt, true_rate = event
            t += dt
            absolute += int(true_rate * dt)
            rate = estimator.update(t, absolute % MODULUS)
            if clean_since_last:
                # Clean interval: the estimator must recover the exact
                # transferred bytes over the exact elapsed time, even
                # through a 32-bit wrap or across lost polls.
                true = (absolute - last_absolute) / (t - last_t)
                assert rate is not None
                assert rate == true
            if rate is not None:
                assert math.isfinite(rate)
                assert 0.0 <= rate <= MAX_RATE
                last_t, last_absolute = t, absolute
                clean_since_last = True
        elif event[0] == "reset":
            t += 1.0
            absolute = event[1]
            rate = estimator.update(t, absolute % MODULUS)
            # A reset is either detected (no rate) or -- when the wrapped
            # reading happens to be plausible -- bounded by the ceiling;
            # it must never produce garbage.
            if rate is not None:
                assert math.isfinite(rate)
                assert 0.0 <= rate <= MAX_RATE
            last_t, last_absolute = t, absolute
            clean_since_last = rate is not None
        else:  # duplicate
            assert estimator.update(t, absolute % MODULUS) is None

    snapshot = estimator.snapshot()
    assert snapshot["updates"] == 1 + len(events)
    assert snapshot["invalid"] == 0
    assert snapshot["duplicates"] == sum(
        1 for event in events if event[0] == "duplicate"
    )


@settings(max_examples=100, deadline=None)
@given(
    dts=st.lists(
        st.floats(min_value=0.05, max_value=5.0, allow_nan=False),
        min_size=2,
        max_size=40,
    ),
    rate=st.integers(min_value=1, max_value=1_000_000),
)
def test_constant_rate_survives_jitter_and_wraps(dts, rate):
    """A constant-rate stream polled on a jittered schedule estimates the
    constant back exactly on every interval, wraps included."""
    estimator = RateEstimator(width=WIDTH, max_rate=2e6)
    t = 0.0
    absolute = MODULUS - 5_000  # start near the top: wraps happen early
    estimator.update(t, absolute % MODULUS)
    for dt in dts:
        t += dt
        moved = int(rate * dt)
        absolute += moved
        estimated = estimator.update(t, absolute % MODULUS)
        assert estimated is not None
        # Exactness is on the integer delta over the float interval.
        assert estimated * dt == float(moved) or math.isclose(
            estimated, moved / dt, rel_tol=1e-9
        )
    assert estimator.snapshot()["resets"] == 0
