"""Integration: the admission service driven purely by pushed telemetry.

Satellite of the telemetry subsystem: a live :class:`AdmissionServer`
whose links measure *nothing* on their own -- every cross-section is
derived from cumulative counter samples pushed through the ``telemetry``
wire op.  Asserts the three contract points end to end:

* admission decisions use the counter-derived rates (``mu_hat`` matches
  the pushed deltas);
* the decision digest is replay-stable: re-executing the journal on a
  fresh twin gateway, and re-running the whole scenario from scratch,
  both reproduce the digest byte for byte;
* a corrupted counter stream (values outside the declared width) drives
  the link to QUARANTINED through the ordinary breaker path.
"""

from __future__ import annotations

import pytest

from repro.core.controllers import CertaintyEquivalentController
from repro.core.estimators import MemorylessEstimator
from repro.runtime.gateway import AdmissionGateway
from repro.runtime.health import LinkHealth
from repro.runtime.link import ManagedLink
from repro.runtime.metrics import MetricsRegistry
from repro.service.protocol import make_request
from repro.service.server import AdmissionServer, replay_journal
from repro.telemetry import IngestFeed

from ..service.conftest import run

CAPACITY = 20.0
PERIOD = 1.0


def make_ingest_gateway(n_links: int = 2) -> AdmissionGateway:
    """Links whose only measurement input is pushed telemetry."""
    registry = MetricsRegistry()
    links = []
    for i in range(n_links):
        feed = IngestFeed(PERIOD, width=32)
        links.append(
            ManagedLink(
                f"link{i}",
                capacity=CAPACITY,
                holding_time=100.0,
                mean_rate=1.0,
                feed=feed,
                estimator=MemorylessEstimator(),
                controller=CertaintyEquivalentController(CAPACITY, 0.05),
                conservative_controller=CertaintyEquivalentController(
                    CAPACITY, alpha=3.0
                ),
                stale_horizon=5.0,
                registry=registry,
            )
        )
    return AdmissionGateway(links, placement="least-loaded", registry=registry)


def request(op, request_id, **fields):
    return make_request(op, request_id, **fields)


def telemetry_frames(request_id: int) -> tuple[list[dict], int]:
    """Two poll rounds of per-flow counter streams for both links.

    Three unit-rate streams per link: anchors at t=0, deltas of 1 byte
    over 1 time unit at t=1, so every stream's derived rate is exactly
    1.0 -- and the resulting cross-section is (n=3, mean=1, var=0).
    """
    frames = []
    for t, level in ((0.0, 0), (1.0, 1)):
        for link in ("link0", "link1"):
            for stream in ("s0", "s1", "s2"):
                frames.append(
                    request(
                        "telemetry", request_id, link=link, t=t,
                        bytes=100 + level, flow=f"{link}-{stream}",
                    )
                )
                request_id += 1
    return frames, request_id


async def drive_scenario() -> tuple[str, list, list]:
    """Push telemetry, admit flows, return (digest, journal, decisions)."""
    server = AdmissionServer(
        make_ingest_gateway(), collect_digest=True, keep_journal=True
    )
    await server.start_dispatcher()
    try:
        frames, next_id = telemetry_frames(0)
        for frame in frames:
            response = await server.submit(frame)
            assert response["ok"], response
            assert response["result"]["buffered"] >= 1
        decisions = []
        for i in range(6):
            response = await server.submit(
                request("admit", next_id, flow=f"f{i}", t=1.5)
            )
            next_id += 1
            assert response["ok"], response
            decisions.append(response["result"]["decision"])
        return server.digest(), list(server.journal), decisions
    finally:
        await server.stop()


class TestPushedTelemetryDrivesAdmission:
    def test_decisions_use_counter_derived_rates(self):
        digest, journal, decisions = run(drive_scenario())
        assert all(d["admitted"] for d in decisions)
        # No bootstrap blind-admits: every decision saw the pushed rates.
        assert all(d["reason"] == "target" for d in decisions)
        assert all(d["mu_hat"] == pytest.approx(1.0) for d in decisions)
        assert all(d["health"] == "healthy" for d in decisions)

    def test_digest_is_replay_stable(self):
        digest, journal, _ = run(drive_scenario())
        assert digest is not None and len(journal) > 0
        # Re-executing the journal on a fresh twin reproduces the digest.
        assert replay_journal(make_ingest_gateway(), journal) == digest
        # So does re-running the whole scenario from scratch.
        digest_again, _, _ = run(drive_scenario())
        assert digest_again == digest


class TestNonIngestLinksRejectPushes:
    def test_push_to_an_oracle_fed_link_is_a_typed_bad_request(self):
        from ..service.conftest import make_gateway  # TraceFeed links

        async def scenario():
            server = AdmissionServer(make_gateway())
            await server.start_dispatcher()
            try:
                return await server.submit(
                    request("telemetry", 0, link="link0", t=1.0, bytes=10)
                )
            finally:
                await server.stop()

        response = run(scenario())
        assert not response["ok"]
        assert response["error"]["code"] == "bad-request"
        assert "--telemetry-ingest" in response["error"]["message"]


class TestCorruptedStreamQuarantines:
    def test_corrupt_counters_fail_the_link_closed(self):
        async def scenario():
            server = AdmissionServer(make_ingest_gateway(1))
            await server.start_dispatcher()
            try:
                # Healthy warm-up: anchors + one clean delta.
                next_id = 0
                for t, level in ((0.0, 0), (1.0, 1)):
                    response = await server.submit(
                        request(
                            "telemetry", next_id, link="link0", t=t,
                            bytes=level, flow="s0",
                        )
                    )
                    next_id += 1
                    assert response["ok"], response
                first = await server.submit(
                    request("admit", next_id, flow="warm", t=1.5)
                )
                next_id += 1
                assert first["result"]["decision"]["admitted"]
                # Corrupted monitor: 2**32 is out of range for the
                # declared 32-bit width.  The frame passes wire
                # validation by design -- trust is judged by the feed.
                rejected = None
                admitted_before = 0
                for i in range(8):
                    t = 2.0 + float(i)
                    response = await server.submit(
                        request(
                            "telemetry", next_id, link="link0", t=t,
                            bytes=(1 << 32) + i, flow="s0",
                        )
                    )
                    next_id += 1
                    assert response["ok"], response
                    response = await server.submit(
                        request("admit", next_id, flow=f"q{i}", t=t)
                    )
                    next_id += 1
                    decision = response["result"]["decision"]
                    if decision["health"] == "quarantined":
                        rejected = decision
                        break
                    assert decision["admitted"]  # breaker not yet open
                    admitted_before += 1
                health = await server.submit(request("health", next_id))
                return rejected, health["result"], admitted_before, server.gateway
            finally:
                await server.stop()

        rejected, health, admitted_before, gateway = run(scenario())
        assert rejected is not None and not rejected["admitted"]
        assert rejected["reason"] == "quarantined"
        assert health["links"]["link0"]["health"] == "quarantined"
        assert gateway.links[0].health is LinkHealth.QUARANTINED
        # Flows admitted before the breaker opened keep draining:
        # quarantine only blocks new admissions.
        assert gateway.links[0].n_flows == 1 + admitted_before
