"""Public-API surface tests: imports, __all__ hygiene, docstring coverage."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.core",
    "repro.theory",
    "repro.traffic",
    "repro.processes",
    "repro.simulation",
    "repro.experiments",
]


def walk_modules():
    """All repro modules (imported)."""
    modules = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        modules.append(importlib.import_module(info.name))
    return modules


class TestImports:
    @pytest.mark.parametrize("name", PACKAGES)
    def test_package_importable(self, name):
        module = importlib.import_module(name)
        assert module.__doc__, f"{name} lacks a module docstring"

    def test_every_module_imports(self):
        assert len(walk_modules()) > 30  # the library is many small modules

    def test_version(self):
        assert repro.__version__ == "1.0.0"


class TestAllExports:
    @pytest.mark.parametrize("name", PACKAGES)
    def test_all_names_resolve(self, name):
        module = importlib.import_module(name)
        exported = getattr(module, "__all__", [])
        assert exported, f"{name} has no __all__"
        for symbol in exported:
            assert hasattr(module, symbol), f"{name}.__all__ lists missing {symbol}"

    def test_top_level_convenience_names(self):
        for symbol in [
            "simulate",
            "SimulationConfig",
            "paper_rcbr_source",
            "q_function",
            "q_inverse",
            "ce_overflow_probability",
            "adjusted_ce_alpha",
            "critical_time_scale",
        ]:
            assert hasattr(repro, symbol)


class TestDocstrings:
    def test_public_callables_documented(self):
        """Every public function/class reachable from a subpackage __all__
        must carry a docstring."""
        undocumented = []
        for name in PACKAGES[1:]:
            module = importlib.import_module(name)
            for symbol in getattr(module, "__all__", []):
                obj = getattr(module, symbol)
                if inspect.isfunction(obj) or inspect.isclass(obj):
                    if not inspect.getdoc(obj):
                        undocumented.append(f"{name}.{symbol}")
        assert not undocumented, f"missing docstrings: {undocumented}"

    def test_public_methods_documented(self):
        """Public methods of the core classes must carry docstrings."""
        from repro.core.admission import AdmissionCriterion
        from repro.core.estimators import Estimator
        from repro.simulation.engine import EventDrivenEngine
        from repro.simulation.fast import FastEngine

        missing = []
        for cls in [AdmissionCriterion, Estimator, EventDrivenEngine, FastEngine]:
            for attr_name, attr in vars(cls).items():
                if attr_name.startswith("_"):
                    continue
                if callable(attr) and not inspect.getdoc(attr):
                    missing.append(f"{cls.__name__}.{attr_name}")
        assert not missing, f"missing method docstrings: {missing}"


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        from repro import errors

        for name in errors.__dict__:
            obj = getattr(errors, name)
            if inspect.isclass(obj) and issubclass(obj, Exception):
                if obj is not errors.ReproError:
                    assert issubclass(obj, errors.ReproError)

    def test_parameter_error_is_value_error(self):
        from repro.errors import ParameterError

        assert issubclass(ParameterError, ValueError)
