"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "fig6"])
        assert args.experiment == "fig6"
        assert args.quality == "standard"
        assert args.seed == 0

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.n == 100.0
        assert args.memory is None  # the rule is applied downstream

    def test_design_requires_core_params(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["design"])

    def test_serve_replay_defaults(self):
        args = build_parser().parse_args(["serve-replay"])
        assert args.links == 4
        assert args.events == 100_000
        assert args.policy == "least-loaded"
        assert args.memory is None  # the rule is applied downstream
        assert args.outage == []

    def test_verbose_is_global_and_repeatable(self):
        args = build_parser().parse_args(["-vv", "serve-replay"])
        assert args.verbose == 2
        args = build_parser().parse_args(["list"])
        assert args.verbose == 0

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 0 and args.host == "127.0.0.1"
        assert args.max_queue_depth == 1024
        assert not args.digest

    def test_loadgen_defaults(self):
        args = build_parser().parse_args(["loadgen", "--self-host"])
        assert args.addr == [] and args.self_host
        assert args.concurrency == 1 and args.retries == 0


class TestExitCodes:
    """The CLI contract: 0 success, 1 runtime failure, 2 usage error."""

    def test_usage_error_exits_2(self):
        with pytest.raises(SystemExit) as exc:
            main(["no-such-command"])
        assert exc.value.code == 2

    def test_missing_required_argument_exits_2(self):
        with pytest.raises(SystemExit) as exc:
            main(["design"])  # --n/--holding-time/--p-q are required
        assert exc.value.code == 2

    def test_post_parse_usage_error_exits_2(self, capsys):
        # loadgen needs exactly one of --addr / --self-host.
        assert main(["loadgen"]) == 2
        assert "usage error" in capsys.readouterr().err

    def test_check_digest_needs_self_host(self, capsys):
        code = main(["loadgen", "--addr", "127.0.0.1:1", "--check-digest"])
        assert code == 2
        assert "usage error" in capsys.readouterr().err

    def test_admit_without_flow_exits_2(self, capsys):
        assert main(["admit-client", "127.0.0.1:1", "admit"]) == 2
        assert "usage error" in capsys.readouterr().err

    def test_runtime_error_exits_1(self, capsys):
        # Nothing listens on this address: connection failure -> 1.
        code = main(
            ["admit-client", "127.0.0.1:9", "ping",
             "--retries", "0", "--timeout", "0.2"]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_library_error_exits_1(self, capsys):
        assert main(["admit-client", "not-an-address", "ping"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_success_exits_0(self, capsys):
        assert main(["list"]) == 0
        assert capsys.readouterr().err == ""


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.split()
        assert "fig5" in out and "prop33" in out

    def test_run_smoke(self, capsys, tmp_path):
        code = main(
            ["run", "fig6", "--quality", "smoke", "--save", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fig6" in out
        assert (tmp_path / "fig6.json").exists()

    def test_theory(self, capsys):
        assert main(["theory", "--memory", "100"]) == 0
        out = capsys.readouterr().out
        assert "eqn (37)" in out and "regime = masking" in out

    def test_design(self, capsys):
        assert (
            main(["design", "--n", "100", "--holding-time", "1000", "--p-q", "1e-3"])
            == 0
        )
        out = capsys.readouterr().out
        assert "alpha_ce" in out
        assert "T_h_tilde : 100" in out

    def test_design_extreme_target_prints_log_form(self, capsys):
        code = main(
            [
                "design",
                "--n", "1000",
                "--holding-time", "10000",
                "--p-q", "1e-3",
                "--memory-fraction", "0.0001",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "p_ce" in out

    def test_serve_replay_smoke(self, capsys):
        code = main(
            [
                "serve-replay",
                "--links", "2",
                "--n", "30",
                "--holding-time", "100",
                "--events", "4000",
                "--seed", "1",
                "--outage", "link0:50:200",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "decisions/s" in out
        assert "link0" in out and "link1" in out
        assert "admits" in out and "rejects" in out and "util" in out
        assert "degradations 1" in out  # the outage must have fired

    def test_serve_replay_json(self, capsys):
        import json

        code = main(
            [
                "serve-replay",
                "--links", "2",
                "--n", "20",
                "--holding-time", "50",
                "--events", "1000",
                "--policy", "hash",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["events"] == 1000
        assert payload["admitted"] + payload["rejected"] == payload["arrivals"]
        assert set(payload["links"]) == {"link0", "link1"}
        assert "gateway.admits" in payload["metrics"]["counters"]

    def test_serve_replay_bad_outage_exits_1(self, capsys):
        # Runtime failures print to stderr and exit 1, never traceback.
        assert main(["serve-replay", "--events", "10", "--outage", "nope"]) == 1
        err = capsys.readouterr().err
        assert "error:" in err and "nope" in err

    @pytest.mark.slow
    def test_simulate_smoke(self, capsys):
        code = main(
            [
                "simulate",
                "--n", "50",
                "--holding-time", "200",
                "--p-ce", "1e-2",
                "--max-time", "2000",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "overflow probability" in out
        assert "utilization" in out
