"""Cross-cutting edge cases not owned by any single module's test file."""

import numpy as np
import pytest

from repro.errors import ParameterError


class TestExperimentsLazyImport:
    def test_unknown_attribute_raises(self):
        import repro.experiments as exps

        with pytest.raises(AttributeError):
            exps.nonexistent_symbol

    def test_lazy_names_resolve(self):
        import repro.experiments as exps

        assert callable(exps.run_experiment)
        assert isinstance(exps.EXPERIMENTS, dict)


class TestRunnerConfigEdges:
    def test_sample_period_with_trace_source(self, rng):
        """Trace sources have no T_c; the paper rule falls back to
        max(T_h_tilde, T_m)."""
        from repro.simulation.runner import SimulationConfig
        from repro.traffic.lrd import starwars_like_source

        source = starwars_like_source(n_segments=256, rng=rng)
        config = SimulationConfig(
            source=source,
            capacity=20.0 * source.mean,
            holding_time=100.0,
            p_ce=1e-2,
            memory=3.0,
            max_time=100.0,
        )
        expected = 2.0 * max(config.holding_time_scaled, 3.0)
        assert config.resolved_sample_period() == pytest.approx(expected)

    def test_config_notes_round_trip(self):
        from repro.simulation.runner import SimulationConfig, simulate
        from repro.traffic.rcbr import paper_rcbr_source

        result = simulate(
            SimulationConfig(
                source=paper_rcbr_source(),
                capacity=30.0,
                holding_time=50.0,
                p_ce=5e-2,
                max_time=300.0,
                seed=0,
            )
        )
        notes = result.config_notes
        assert notes["engine"] == "fast"
        assert notes["p_q"] == 5e-2
        assert notes["sample_period"] > 0.0


class TestCliErrorPaths:
    def test_unknown_experiment_id(self, capsys):
        from repro.cli import main

        # Runtime failures exit 1 with a diagnostic (not a traceback).
        assert main(["run", "fig99", "--quality", "smoke"]) == 1
        assert "error:" in capsys.readouterr().err


class TestGaussianArrayPaths:
    def test_log_q_array(self):
        from repro.core.gaussian import log_q_function

        out = log_q_function(np.array([0.0, 5.0, 35.0]))
        assert out.shape == (3,)
        assert np.all(np.isfinite(out))

    def test_phi_preserves_dtype_width(self):
        from repro.core.gaussian import phi

        out = phi(np.zeros(4, dtype=np.float32))
        assert out.shape == (4,)


class TestSingleFlowSystem:
    def test_engine_with_capacity_for_one_flow(self):
        """Degenerate n ~ 1: variance is undefined with a single flow; the
        engine must stay consistent rather than crash or runaway."""
        from repro.core.controllers import CertaintyEquivalentController
        from repro.core.estimators import MemorylessEstimator
        from repro.simulation.engine import EventDrivenEngine
        from repro.traffic.rcbr import paper_rcbr_source

        engine = EventDrivenEngine(
            source=paper_rcbr_source(),
            controller=CertaintyEquivalentController(1.2, 1e-2),
            estimator=MemorylessEstimator(),
            capacity=1.2,
            holding_time=20.0,
            rng=np.random.default_rng(0),
        )
        engine.run_until(200.0)
        assert engine.n_flows >= 0
        assert engine.n_flows <= 3
        assert 0.0 <= engine.link.overflow_fraction <= 1.0


class TestStepUtilityThresholdMeter:
    def test_partial_threshold(self):
        """A 90%-threshold step utility tolerates mild overload."""
        from repro.core.utility import StepUtility, UtilityMeter

        meter = UtilityMeter(10.0, StepUtility(threshold=0.9))
        meter.accumulate(10.5, 1.0)  # delivered 0.952 >= 0.9: no loss
        meter.accumulate(12.0, 1.0)  # delivered 0.833 < 0.9: full loss
        assert meter.mean_utility_loss == pytest.approx(0.5)


class TestQualityFull:
    def test_full_pick(self):
        from repro.experiments.common import Quality

        assert Quality("full").pick("a", "b", "c") == "c"


class TestTraceEmpiricalTimescaleGuard:
    def test_short_trace_custom_lag(self, rng):
        from repro.traffic.lrd import starwars_like_source

        source = starwars_like_source(
            n_segments=128, renegotiation_period=None, rng=rng
        )
        tau = source.empirical_correlation_time(max_lag=16)
        assert tau > 0.0
