"""Tests for the memoryless continuous-load forms (eqns (32)-(35))."""

import math

import pytest

from repro.core.gaussian import q_function, q_inverse
from repro.errors import ParameterError
from repro.theory.continuous import (
    overflow_in_flow_params,
    overflow_probability_memoryless,
    overflow_vs_target,
    separation_approx,
)
from repro.theory.memoryful import ContinuousLoadModel, overflow_probability


def model(t_c=1.0, t_h_tilde=100.0, snr=0.3) -> ContinuousLoadModel:
    return ContinuousLoadModel(
        correlation_time=t_c, holding_time_scaled=t_h_tilde, snr=snr
    )


class TestEqn32:
    def test_equals_general_formula_at_tm0(self):
        m = model()
        assert overflow_probability_memoryless(m, p_ce=1e-3) == pytest.approx(
            overflow_probability(m, p_ce=1e-3)
        )

    def test_strips_memory_if_present(self):
        with_memory = ContinuousLoadModel(
            correlation_time=1.0, holding_time_scaled=100.0, snr=0.3, memory=50.0
        )
        memless = model()
        assert overflow_probability_memoryless(
            with_memory, p_ce=1e-3
        ) == pytest.approx(overflow_probability_memoryless(memless, p_ce=1e-3))

    def test_scales_with_gamma(self):
        """In the separation regime p_f is ~ linear in gamma (eqn (33))."""
        p1 = overflow_probability_memoryless(
            model(t_c=0.02, t_h_tilde=30.0), alpha=7.0
        )
        p2 = overflow_probability_memoryless(
            model(t_c=0.02, t_h_tilde=60.0), alpha=7.0
        )
        assert 0.0 < p1 < 1.0
        assert p2 / p1 == pytest.approx(2.0, rel=0.05)


class TestEqn33:
    def test_closed_form(self):
        alpha = 3.5
        gamma = 25.0
        expected = gamma / (2.0 * math.sqrt(math.pi)) * math.exp(-0.25 * alpha**2)
        assert separation_approx(gamma, alpha=alpha) == pytest.approx(expected)

    def test_tracks_eqn32_when_separated(self):
        m = model(t_c=0.1)  # gamma = 300
        p32 = overflow_probability_memoryless(m, alpha=4.5)
        p33 = separation_approx(m.gamma, alpha=4.5)
        assert p33 == pytest.approx(p32, rel=0.1)

    def test_clipped_at_one(self):
        assert separation_approx(1e9, alpha=0.5) == 1.0

    def test_validation(self):
        with pytest.raises(ParameterError):
            separation_approx(-1.0, alpha=3.0)
        with pytest.raises(ParameterError):
            separation_approx(10.0)


class TestEqn34And35:
    def test_eqn34_structure(self):
        """(34) = (T_h_tilde / 2 T_c) snr alpha Q(alpha/sqrt(2))."""
        m = model()
        p_ce = 1e-3
        alpha = q_inverse(p_ce)
        expected = (
            m.holding_time_scaled
            / (2.0 * m.correlation_time)
            * m.snr
            * alpha
            * q_function(alpha / math.sqrt(2.0))
        )
        assert overflow_in_flow_params(m, p_ce) == pytest.approx(expected)

    def test_eqn34_tracks_eqn33(self):
        m = model()
        p33 = separation_approx(m.gamma, p_ce=1e-4)
        p34 = overflow_in_flow_params(m, 1e-4)
        assert p34 == pytest.approx(p33, rel=0.2)

    def test_eqn35_square_root_law(self):
        """(35): p_f scales like sqrt(p_ce) for the memoryless scheme."""
        m = model()
        p_hi = overflow_vs_target(m, 1e-4)
        p_lo = overflow_vs_target(m, 1e-6)
        # 100x tighter target only buys ~10x better p_f (plus the slowly
        # varying alpha factor).
        assert p_hi / p_lo == pytest.approx(10.0, rel=0.25)

    def test_eqn35_tracks_eqn33(self):
        m = model()
        p33 = separation_approx(m.gamma, p_ce=1e-4)
        p35 = overflow_vs_target(m, 1e-4)
        assert p35 == pytest.approx(p33, rel=0.25)

    @pytest.mark.parametrize("fn", [overflow_in_flow_params, overflow_vs_target])
    def test_reject_targets_above_half(self, fn):
        with pytest.raises(ParameterError):
            fn(model(), 0.6)

    def test_comparison_with_impulsive(self):
        """Eqn (34)'s message: continuous load multiplies the impulsive
        Q(alpha/sqrt 2) by (T_h_tilde/2T_c) snr alpha >> 1 when time-scales
        separate."""
        from repro.theory.impulsive import ce_overflow_probability

        m = model()  # T_h_tilde/T_c = 100
        p_cont = overflow_in_flow_params(m, 1e-3)
        p_imp = float(ce_overflow_probability(1e-3))
        factor = m.holding_time_scaled / (2 * m.correlation_time) * m.snr * q_inverse(1e-3)
        assert p_cont / p_imp == pytest.approx(factor, rel=1e-6)
        assert factor > 10.0
