"""Tests for the finite-holding-time theory (eqn (21))."""

import math

import numpy as np
import pytest

from repro.core.gaussian import q_function, q_inverse
from repro.errors import ParameterError
from repro.theory.finite_holding import (
    exponential_autocorrelation,
    overflow_probability_at,
    overflow_probability_curve,
    peak_overflow,
)


class TestAutocorrelation:
    def test_at_zero(self):
        rho = exponential_autocorrelation(2.0)
        assert rho(0.0) == 1.0

    def test_decay_rate(self):
        rho = exponential_autocorrelation(2.0)
        assert rho(2.0) == pytest.approx(math.exp(-1.0))

    def test_even(self):
        rho = exponential_autocorrelation(2.0)
        assert rho(-3.0) == rho(3.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ParameterError):
            exponential_autocorrelation(0.0)


class TestEqn21:
    KW = dict(p_q=1e-2, snr=0.3, holding_time_scaled=50.0)

    def test_zero_at_t0(self):
        rho = exponential_autocorrelation(1.0)
        assert overflow_probability_at(0.0, rho=rho, **self.KW) == 0.0

    def test_matches_formula(self):
        rho = exponential_autocorrelation(1.0)
        t = 2.0
        alpha = q_inverse(self.KW["p_q"])
        expected = q_function(
            (t / (self.KW["snr"] * self.KW["holding_time_scaled"]) + alpha)
            / math.sqrt(2.0 * (1.0 - math.exp(-t)))
        )
        assert overflow_probability_at(t, rho=rho, **self.KW) == pytest.approx(expected)

    def test_vanishes_for_large_t(self):
        rho = exponential_autocorrelation(1.0)
        assert overflow_probability_at(1e4, rho=rho, **self.KW) < 1e-100

    def test_unimodal_shape(self):
        """Rises from 0, single peak, then decays."""
        curve = overflow_probability_curve(
            np.linspace(0.0, 300.0, 400), correlation_time=1.0, **self.KW
        )
        peak_idx = int(np.argmax(curve))
        assert 0 < peak_idx < len(curve) - 1
        assert np.all(np.diff(curve[peak_idx:]) <= 1e-15)

    def test_rejects_negative_time(self):
        rho = exponential_autocorrelation(1.0)
        with pytest.raises(ParameterError):
            overflow_probability_at(-1.0, rho=rho, **self.KW)

    def test_array_input(self):
        rho = exponential_autocorrelation(1.0)
        out = overflow_probability_at(np.array([0.5, 1.0]), rho=rho, **self.KW)
        assert out.shape == (2,)

    def test_longer_holding_is_worse(self):
        """Slower departures repair slower => higher overflow at fixed t."""
        rho = exponential_autocorrelation(1.0)
        p_short = overflow_probability_at(
            5.0, p_q=1e-2, snr=0.3, holding_time_scaled=10.0, rho=rho
        )
        p_long = overflow_probability_at(
            5.0, p_q=1e-2, snr=0.3, holding_time_scaled=1000.0, rho=rho
        )
        assert p_long > p_short

    def test_peak_never_exceeds_impulsive_limit(self):
        """The t-curve is bounded by Q(alpha_q/sqrt(2)) (t -> inf without
        departures), i.e. Prop 3.3 is the worst case of eqn (21)."""
        from repro.theory.impulsive import ce_overflow_probability

        _, p_peak = peak_overflow(
            p_q=1e-2, snr=0.3, holding_time_scaled=1e6, correlation_time=1.0
        )
        assert p_peak <= float(ce_overflow_probability(1e-2)) * (1.0 + 1e-9)


class TestPeakOverflow:
    def test_peak_is_on_curve(self):
        t_peak, p_peak = peak_overflow(
            p_q=1e-2, snr=0.3, holding_time_scaled=50.0, correlation_time=1.0
        )
        rho = exponential_autocorrelation(1.0)
        assert p_peak == pytest.approx(
            overflow_probability_at(
                t_peak, p_q=1e-2, snr=0.3, holding_time_scaled=50.0, rho=rho
            )
        )

    def test_peak_dominates_grid(self):
        t_peak, p_peak = peak_overflow(
            p_q=1e-2, snr=0.3, holding_time_scaled=50.0, correlation_time=1.0
        )
        curve = overflow_probability_curve(
            np.linspace(0.0, 500.0, 1000),
            p_q=1e-2,
            snr=0.3,
            holding_time_scaled=50.0,
            correlation_time=1.0,
        )
        assert p_peak >= curve.max() - 1e-12

    def test_peak_time_scale(self):
        """Peak sits near the shorter of T_c and T_h_tilde."""
        t_peak, _ = peak_overflow(
            p_q=1e-2, snr=0.3, holding_time_scaled=50.0, correlation_time=1.0
        )
        assert 0.1 < t_peak < 50.0
