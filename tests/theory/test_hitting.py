"""Tests for the generic Braker boundary-crossing machinery (eqn (30))."""

import math

import pytest

from repro.core.gaussian import q_function
from repro.errors import ParameterError
from repro.theory.hitting import boundary_crossing_probability, first_passage_density


def ou_variance(t_c: float):
    """Var[Y_{-t} - Y_0] for an OU process: 2(1 - e^{-t/T_c})."""

    def var(t: float) -> float:
        return 2.0 * (1.0 - math.exp(-t / t_c))

    return var


class TestFirstPassageDensity:
    def test_zero_where_variance_zero(self):
        var = ou_variance(1.0)
        assert first_passage_density(
            0.0, alpha=3.0, beta=0.1, variance_fn=var, v_prime_0=2.0
        ) == 0.0

    def test_positive_in_bulk(self):
        var = ou_variance(1.0)
        assert (
            first_passage_density(
                1.0, alpha=3.0, beta=0.1, variance_fn=var, v_prime_0=2.0
            )
            > 0.0
        )

    def test_decays_along_boundary(self):
        var = ou_variance(1.0)
        d5 = first_passage_density(5.0, alpha=3.0, beta=0.5, variance_fn=var, v_prime_0=2.0)
        d50 = first_passage_density(50.0, alpha=3.0, beta=0.5, variance_fn=var, v_prime_0=2.0)
        assert d50 < d5

    def test_underflow_guard(self):
        var = ou_variance(1.0)
        assert (
            first_passage_density(
                1e6, alpha=3.0, beta=1.0, variance_fn=var, v_prime_0=2.0
            )
            == 0.0
        )


class TestBoundaryCrossing:
    def test_matches_eqn32_specialization(self):
        """The generic machinery with OU variance must equal the
        memoryless overflow formula."""
        from repro.theory.memoryful import ContinuousLoadModel, overflow_probability

        m = ContinuousLoadModel(
            correlation_time=1.0, holding_time_scaled=100.0, snr=0.3
        )
        direct = boundary_crossing_probability(
            alpha=3.09,
            beta=m.beta,
            variance_fn=ou_variance(1.0),
            v_prime_0=2.0,
            include_initial_term=False,
        )
        assert direct == pytest.approx(overflow_probability(m, alpha=3.09), rel=1e-6)

    def test_numeric_v_prime_estimation(self):
        var = ou_variance(1.0)
        explicit = boundary_crossing_probability(
            alpha=3.0, beta=0.05, variance_fn=var, v_prime_0=2.0
        )
        estimated = boundary_crossing_probability(
            alpha=3.0, beta=0.05, variance_fn=var
        )
        assert estimated == pytest.approx(explicit, rel=1e-4)

    def test_initial_term_added(self):
        """A process with sigma(0) > 0 picks up Q(alpha/sigma(0))."""

        def flat(t: float) -> float:
            return 1.0  # constant-variance process

        with_term = boundary_crossing_probability(
            alpha=3.0, beta=10.0, variance_fn=flat, v_prime_0=0.0
        )
        without = boundary_crossing_probability(
            alpha=3.0,
            beta=10.0,
            variance_fn=flat,
            v_prime_0=0.0,
            include_initial_term=False,
        )
        assert without == pytest.approx(0.0, abs=1e-12)
        assert with_term == pytest.approx(q_function(3.0), rel=1e-9)

    def test_decreasing_in_alpha(self):
        var = ou_variance(1.0)
        p3 = boundary_crossing_probability(alpha=3.0, beta=0.05, variance_fn=var)
        p4 = boundary_crossing_probability(alpha=4.0, beta=0.05, variance_fn=var)
        assert p4 < p3

    def test_decreasing_in_beta(self):
        """A steeper boundary (faster repair) is hit less often."""
        var = ou_variance(1.0)
        slow = boundary_crossing_probability(alpha=3.0, beta=0.01, variance_fn=var)
        fast = boundary_crossing_probability(alpha=3.0, beta=1.0, variance_fn=var)
        assert fast < slow

    def test_clipped_to_unit_interval(self):
        var = ou_variance(0.001)  # near-white process: huge crossing rate
        p = boundary_crossing_probability(alpha=0.5, beta=1e-4, variance_fn=var)
        assert 0.0 <= p <= 1.0

    def test_validation(self):
        var = ou_variance(1.0)
        with pytest.raises(ParameterError):
            boundary_crossing_probability(alpha=-1.0, beta=0.1, variance_fn=var)
        with pytest.raises(ParameterError):
            boundary_crossing_probability(alpha=3.0, beta=0.0, variance_fn=var)
        with pytest.raises(ParameterError):
            boundary_crossing_probability(
                alpha=3.0, beta=0.1, variance_fn=lambda t: 1.0 - t, v_prime_0=-1.0
            )

    def test_non_exponential_covariance(self):
        """Works for a two-time-scale mixture covariance (no closed form)."""

        def var(t: float) -> float:
            rho = 0.6 * math.exp(-t / 0.5) + 0.4 * math.exp(-t / 20.0)
            return 2.0 * (1.0 - rho)

        p = boundary_crossing_probability(alpha=3.0, beta=0.05, variance_fn=var)
        assert 0.0 < p < 1.0
