"""Tests for the impulsive-load theory (Section 3.1)."""

import math

import numpy as np
import pytest

from repro.core.admission import overflow_probability_for_count
from repro.core.gaussian import q_function, q_inverse
from repro.errors import ParameterError
from repro.theory.impulsive import (
    adjusted_target_impulsive,
    admitted_count_distribution,
    ce_overflow_probability,
    mean_sensitivity,
    mean_sensitivity_relative,
    perfect_knowledge_count,
    perfect_knowledge_count_asymptotic,
    std_sensitivity,
    utilization_loss_impulsive,
)


class TestPerfectKnowledgeCount:
    def test_exact_vs_asymptotic(self):
        exact = perfect_knowledge_count(10000.0, 1.0, 0.3, 1e-3)
        approx = perfect_knowledge_count_asymptotic(10000.0, 1.0, 0.3, 1e-3)
        assert exact == pytest.approx(approx, abs=2.0)

    def test_safety_margin_scaling(self):
        """The margin n - m* must scale like sqrt(n) (eqn (5))."""
        margins = [
            n - perfect_knowledge_count(n, 1.0, 0.3, 1e-3) for n in [100.0, 400.0]
        ]
        assert margins[1] / margins[0] == pytest.approx(2.0, rel=0.1)

    def test_rejects_bad_n(self):
        with pytest.raises(ParameterError):
            perfect_knowledge_count(0.0, 1.0, 0.3, 1e-3)


class TestSqrt2Law:
    def test_paper_example(self):
        """p_q = 1e-5 => p_f ~ 1.3e-3 (the paper's worked number)."""
        assert ce_overflow_probability(1e-5) == pytest.approx(1.3e-3, rel=0.05)

    def test_definition(self):
        p_q = 1e-3
        assert ce_overflow_probability(p_q) == pytest.approx(
            q_function(q_inverse(p_q) / math.sqrt(2.0))
        )

    def test_always_worse_than_target(self):
        for p_q in [1e-2, 1e-4, 1e-8]:
            assert ce_overflow_probability(p_q) > p_q

    def test_degradation_grows_with_stringency(self):
        """The more stringent the target, the worse the relative miss."""
        r1 = ce_overflow_probability(1e-2) / 1e-2
        r2 = ce_overflow_probability(1e-6) / 1e-6
        assert r2 > r1

    def test_vectorized(self):
        out = ce_overflow_probability(np.array([1e-2, 1e-4]))
        assert out.shape == (2,)


class TestAdjustment:
    def test_eqn15_fixes_the_target(self):
        """Running CE at p_ce = Q(sqrt2 alpha_q) must achieve p_q."""
        p_q = 1e-3
        p_ce = adjusted_target_impulsive(p_q)
        assert ce_overflow_probability(p_ce) == pytest.approx(p_q, rel=1e-9)

    def test_roughly_square_of_target(self):
        """p_ce scales as ~p_q^2.  Carrying the paper's own Q(x) ~ phi(x)/x
        substitution through eqn (15) gives p_ce ~ alpha_q*sqrt(pi)*p_q^2
        (the memo's printed constant alpha_q/(2 sqrt pi) is a transcription
        slip off by exactly 2*pi)."""
        p_q = 1e-3
        alpha_q = q_inverse(p_q)
        approx = alpha_q * math.sqrt(math.pi) * p_q**2
        assert adjusted_target_impulsive(p_q) == pytest.approx(approx, rel=0.25)

    def test_utilization_loss_formula(self):
        loss = utilization_loss_impulsive(100.0, 0.3, 1e-3)
        expected = (math.sqrt(2) - 1) * 0.3 * q_inverse(1e-3) * 10.0
        assert loss == pytest.approx(expected)

    def test_utilization_loss_scales_sqrt_n(self):
        l1 = utilization_loss_impulsive(100.0, 0.3, 1e-3)
        l2 = utilization_loss_impulsive(400.0, 0.3, 1e-3)
        assert l2 / l1 == pytest.approx(2.0)


class TestAdmittedCountDistribution:
    def test_mean_below_n(self):
        dist = admitted_count_distribution(100.0, 1.0, 0.3, 1e-3)
        assert dist.mean < 100.0

    def test_std_scaling(self):
        d1 = admitted_count_distribution(100.0, 1.0, 0.3, 1e-3)
        d2 = admitted_count_distribution(400.0, 1.0, 0.3, 1e-3)
        assert d2.std / d1.std == pytest.approx(2.0)

    def test_mean_matches_m_star_asymptotic(self):
        dist = admitted_count_distribution(100.0, 1.0, 0.3, 1e-3)
        assert dist.mean == pytest.approx(
            perfect_knowledge_count_asymptotic(100.0, 1.0, 0.3, 1e-3)
        )

    def test_quantile(self):
        dist = admitted_count_distribution(100.0, 1.0, 0.3, 1e-3)
        assert dist.quantile(0.5) == pytest.approx(dist.mean)
        assert dist.quantile(0.1) > dist.mean  # upper-tail convention


class TestSensitivities:
    def test_mean_sensitivity_finite_difference(self):
        """s_mu must match a finite difference on the exact pipeline:
        measure mu_hat -> admit m(mu_hat) -> evaluate true p_f."""
        n, mu, sigma, p_q = 400.0, 1.0, 0.3, 1e-3
        c = n * mu
        eps = 1e-6

        def p_f_of_measured(mu_hat: float) -> float:
            from repro.core.admission import admissible_flow_count

            m = admissible_flow_count(mu_hat, sigma, c, p_q)
            return overflow_probability_for_count(mu, sigma, c, m)

        fd = (p_f_of_measured(mu + eps) - p_f_of_measured(mu - eps)) / (2 * eps)
        assert mean_sensitivity(n, mu, sigma, p_q) == pytest.approx(fd, rel=1e-2)

    def test_std_sensitivity_finite_difference(self):
        n, mu, sigma, p_q = 400.0, 1.0, 0.3, 1e-3
        c = n * mu
        eps = 1e-6

        def p_f_of_measured(sigma_hat: float) -> float:
            from repro.core.admission import admissible_flow_count

            m = admissible_flow_count(mu, sigma_hat, c, p_q)
            return overflow_probability_for_count(mu, sigma, c, m)

        fd = (p_f_of_measured(sigma + eps) - p_f_of_measured(sigma - eps)) / (2 * eps)
        assert std_sensitivity(sigma, p_q) == pytest.approx(fd, rel=1e-2)

    def test_mean_sensitivity_grows_with_n(self):
        s1 = abs(mean_sensitivity(100.0, 1.0, 0.3, 1e-3))
        s2 = abs(mean_sensitivity(400.0, 1.0, 0.3, 1e-3))
        assert s2 / s1 == pytest.approx(2.0, rel=0.05)

    def test_std_sensitivity_independent_of_n(self):
        # std_sensitivity takes no n at all -- the paper's point.
        assert std_sensitivity(0.3, 1e-3) == std_sensitivity(0.3, 1e-3)

    def test_relative_form_carries_mu(self):
        assert mean_sensitivity_relative(100.0, 2.0, 0.3, 1e-3) == pytest.approx(
            2.0 * mean_sensitivity(100.0, 2.0, 0.3, 1e-3)
        )

    def test_both_negative(self):
        assert mean_sensitivity(100.0, 1.0, 0.3, 1e-3) < 0.0
        assert std_sensitivity(0.3, 1e-3) < 0.0
