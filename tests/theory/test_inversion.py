"""Tests for the robust-target inversion (Figs 6-7 machinery)."""

import pytest

from repro.core.gaussian import q_function, q_inverse
from repro.errors import ParameterError
from repro.theory.inversion import (
    OVERFLOW_FORMULAS,
    adjusted_ce_alpha,
    adjusted_ce_target,
)
from repro.theory.memoryful import (
    ContinuousLoadModel,
    overflow_probability,
    overflow_probability_separation,
)

KW = dict(correlation_time=1.0, holding_time_scaled=100.0, snr=0.3)


class TestInversionConsistency:
    @pytest.mark.parametrize("formula", ["general", "separation"])
    @pytest.mark.parametrize("t_m", [1.0, 10.0, 100.0])
    def test_roundtrip(self, formula, t_m):
        """Predicted p_f at the inverted alpha must equal p_q."""
        p_q = 1e-3
        alpha_ce = adjusted_ce_alpha(p_q, memory=t_m, formula=formula, **KW)
        model = ContinuousLoadModel(memory=t_m, **KW)
        predict = OVERFLOW_FORMULAS[formula]
        assert predict(model, alpha=alpha_ce) == pytest.approx(p_q, rel=1e-6)

    def test_more_memory_needs_less_conservatism(self):
        alphas = [
            adjusted_ce_alpha(1e-3, memory=t_m, formula="separation", **KW)
            for t_m in [1.0, 10.0, 100.0, 1000.0]
        ]
        assert alphas == sorted(alphas, reverse=True)

    def test_always_more_conservative_than_target(self):
        alpha_q = q_inverse(1e-3)
        for t_m in [1.0, 100.0]:
            assert adjusted_ce_alpha(1e-3, memory=t_m, **KW) > alpha_q

    def test_large_memory_approaches_alpha_q(self):
        alpha_ce = adjusted_ce_alpha(1e-3, memory=1e6, formula="separation", **KW)
        assert alpha_ce == pytest.approx(q_inverse(1e-3), rel=0.05)

    def test_target_form_matches_alpha_form(self):
        p_ce = adjusted_ce_target(1e-3, memory=100.0, **KW)
        alpha = adjusted_ce_alpha(1e-3, memory=100.0, **KW)
        assert p_ce == pytest.approx(q_function(alpha), rel=1e-9)

    def test_paper_scale_tiny_targets(self):
        """For small T_m the required p_ce is many orders of magnitude below
        p_q (the paper reports values below 1e-10 on its largest systems)."""
        p_ce = adjusted_ce_target(
            1e-3,
            memory=0.1,
            correlation_time=1.0,
            holding_time_scaled=316.0,  # n=1000, T_h=1e4
            snr=0.3,
            formula="separation",
        )
        assert p_ce < 1e-9


class TestInversionEdgeCases:
    def test_rejects_bad_p_q(self):
        with pytest.raises(ParameterError):
            adjusted_ce_alpha(0.7, memory=10.0, **KW)
        with pytest.raises(ParameterError):
            adjusted_ce_alpha(0.0, memory=10.0, **KW)

    def test_rejects_unknown_formula(self):
        with pytest.raises(ParameterError):
            adjusted_ce_alpha(1e-3, memory=10.0, formula="nope", **KW)

    def test_aggressive_target_still_solvable(self):
        """Even extreme separation (gamma ~ 3e7) plus an aggressive p_q has
        a finite solution -- the Gaussian tail always wins eventually."""
        alpha = adjusted_ce_alpha(
            1e-9,
            memory=0.0,
            correlation_time=1e-4,
            holding_time_scaled=1e4,
            snr=0.3,
            formula="separation",
        )
        assert 10.0 < alpha < 35.0

    def test_deep_repair_regime_alpha_scales_with_sigma0(self):
        """In the deep repair regime the hitting term vanishes and the
        inversion is governed by the lag-0 term Q(alpha/sigma_0) = p_q, so
        alpha_ce ~ sigma_0 * alpha_q with sigma_0^2 = T_m/(T_c+T_m)."""
        alpha = adjusted_ce_alpha(
            1e-3,
            memory=10.0,
            correlation_time=1e7,
            holding_time_scaled=10.0,
            snr=0.3,
            formula="general",
        )
        sigma0 = (10.0 / (1e7 + 10.0)) ** 0.5
        assert alpha == pytest.approx(sigma0 * q_inverse(1e-3), rel=1e-3)

    def test_general_vs_separation_agree_when_separated(self):
        a_gen = adjusted_ce_alpha(1e-3, memory=10.0, formula="general", **KW)
        a_sep = adjusted_ce_alpha(1e-3, memory=10.0, formula="separation", **KW)
        assert a_gen == pytest.approx(a_sep, rel=0.05)


class TestControllerIntegration:
    def test_adjusted_controller_runs_with_underflowing_target(self):
        """alpha_ce ~ 7+ has p_ce ~ 1e-12; the controller must still build
        and admit a sensible count."""
        from repro.core.controllers import CertaintyEquivalentController
        from repro.core.estimators import BandwidthEstimate

        ctrl = CertaintyEquivalentController.with_adjusted_target(
            100.0,
            1e-3,
            memory=0.5,
            correlation_time=1.0,
            holding_time_scaled=100.0,
            snr=0.3,
            formula="separation",
        )
        target = ctrl.target_count(BandwidthEstimate(mu=1.0, sigma=0.3, n=90), 0)
        assert 50.0 < target < 100.0
