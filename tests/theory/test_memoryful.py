"""Tests for the memoryful continuous-load theory (eqns (37)-(39), regimes)."""

import dataclasses
import math

import pytest

from repro.core.gaussian import q_function, q_inverse
from repro.errors import ParameterError
from repro.theory.memoryful import (
    ContinuousLoadModel,
    masking_regime_approx,
    overflow_probability,
    overflow_probability_flow_params,
    overflow_probability_separation,
    repair_regime_approx,
    variance_function,
)


def model(t_c=1.0, t_h_tilde=100.0, snr=0.3, t_m=0.0) -> ContinuousLoadModel:
    return ContinuousLoadModel(
        correlation_time=t_c, holding_time_scaled=t_h_tilde, snr=snr, memory=t_m
    )


class TestModelParams:
    def test_beta_gamma_definitions(self):
        m = model()
        assert m.beta == pytest.approx(1.0 / (0.3 * 100.0))
        assert m.gamma == pytest.approx(0.3 * 100.0 / 1.0)
        assert m.gamma == pytest.approx(1.0 / (m.beta * m.correlation_time))

    def test_from_system(self):
        m = ContinuousLoadModel.from_system(
            n=100.0, holding_time=1000.0, correlation_time=1.0, snr=0.3
        )
        assert m.holding_time_scaled == pytest.approx(100.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(correlation_time=0.0, holding_time_scaled=1.0, snr=0.3),
            dict(correlation_time=1.0, holding_time_scaled=0.0, snr=0.3),
            dict(correlation_time=1.0, holding_time_scaled=1.0, snr=0.0),
            dict(correlation_time=1.0, holding_time_scaled=1.0, snr=0.3, memory=-1.0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ParameterError):
            ContinuousLoadModel(**kwargs)


class TestVarianceFunction:
    def test_memoryless_form(self):
        m = model(t_m=0.0)
        for t in [0.0, 0.5, 3.0]:
            assert variance_function(t, m) == pytest.approx(
                2.0 * (1.0 - math.exp(-t))
            )

    def test_lag_zero_value(self):
        """sigma_m^2(0) = T_m/(T_c+T_m) -- the stationary Var[Y - Z]."""
        m = model(t_m=4.0)
        assert variance_function(0.0, m) == pytest.approx(4.0 / 5.0)

    def test_lag_infinity_value(self):
        """sigma_m^2(inf) = 1 + Var[Z] = 1 + T_c/(T_c+T_m)."""
        m = model(t_m=4.0)
        assert variance_function(1e9, m) == pytest.approx(1.0 + 1.0 / 5.0)

    def test_monotone_increasing(self):
        m = model(t_m=2.0)
        values = [variance_function(t, m) for t in [0.0, 0.1, 1.0, 10.0]]
        assert values == sorted(values)

    def test_lag0_variance_grows_with_memory(self):
        """Var[Y_0 - Z_0](0) = T_m/(T_c+T_m): more memory means the smoothed
        estimate tracks the instantaneous bandwidth less tightly, approaching
        the pure bandwidth-fluctuation variance 1."""
        assert variance_function(0.0, model(t_m=100.0)) > variance_function(
            0.0, model(t_m=10.0)
        )
        assert variance_function(0.0, model(t_m=1e9)) == pytest.approx(1.0, rel=1e-6)


class TestEqn37:
    def test_requires_exactly_one_target(self):
        with pytest.raises(ParameterError):
            overflow_probability(model())
        with pytest.raises(ParameterError):
            overflow_probability(model(), p_ce=1e-3, alpha=3.0)

    def test_monotone_decreasing_in_memory(self):
        values = [
            overflow_probability(model(t_m=t_m), p_ce=1e-3)
            for t_m in [0.0, 1.0, 10.0, 100.0]
        ]
        assert values == sorted(values, reverse=True)

    def test_memoryless_far_exceeds_target(self):
        """Continuous load + memoryless is much worse than even the
        impulsive sqrt(2) law when gamma >> 1 (eqn (34))."""
        from repro.theory.impulsive import ce_overflow_probability

        p = overflow_probability(model(t_m=0.0), p_ce=1e-3)
        assert p > 10.0 * float(ce_overflow_probability(1e-3))

    def test_large_memory_floor_is_bandwidth_term(self):
        """As T_m -> inf only Q(alpha sqrt(1+T_c/T_m)) -> Q(alpha) ~ p_ce
        remains."""
        p = overflow_probability(model(t_m=1e6), p_ce=1e-3)
        assert p == pytest.approx(1e-3, rel=0.15)

    def test_monotone_increasing_in_alpha_conservatism(self):
        m = model(t_m=10.0)
        p1 = overflow_probability(m, alpha=3.0)
        p2 = overflow_probability(m, alpha=4.0)
        assert p2 < p1

    def test_decreasing_in_holding_time(self):
        """Longer T_h_tilde => more estimation opportunities => worse."""
        p_short = overflow_probability(model(t_h_tilde=10.0), p_ce=1e-3)
        p_long = overflow_probability(model(t_h_tilde=1000.0), p_ce=1e-3)
        assert p_long > p_short


class TestEqn38vs37:
    @pytest.mark.parametrize("t_m", [0.0, 1.0, 10.0, 100.0, 1000.0])
    def test_agree_under_separation(self, t_m):
        """gamma = 30 here: (38) should track (37) closely."""
        m = model(t_m=t_m)
        p37 = overflow_probability(m, p_ce=1e-3)
        p38 = overflow_probability_separation(m, p_ce=1e-3)
        assert p38 == pytest.approx(p37, rel=0.25)

    def test_eqn38_closed_form_memoryless(self):
        """(38) with T_m=0 must equal (33): gamma/(2 sqrt(pi)) e^{-a^2/4}."""
        m = model(t_m=0.0)
        alpha = q_inverse(1e-3)
        expected = m.gamma / (2.0 * math.sqrt(math.pi)) * math.exp(-0.25 * alpha**2)
        assert overflow_probability_separation(m, p_ce=1e-3) == pytest.approx(expected)

    def test_eqn39_tracks_eqn38(self):
        """The p_ce-explicit rewrite agrees to the Q ~ phi/x accuracy."""
        for t_m in [0.0, 10.0, 100.0]:
            m = model(t_m=t_m)
            p38 = overflow_probability_separation(m, p_ce=1e-3)
            p39 = overflow_probability_flow_params(m, 1e-3)
            assert p39 == pytest.approx(p38, rel=0.35)

    def test_exponent_interpolation(self):
        """(39)'s exponent (T_c+T_m)/(2T_c+T_m) goes 1/2 -> 1 with memory,
        i.e. p_f goes from ~sqrt(p_ce) to ~p_ce scaling."""
        p_ce = 1e-4
        memless = overflow_probability_flow_params(model(t_m=0.0), p_ce)
        heavy = overflow_probability_flow_params(model(t_m=1e5), p_ce)
        # The memoryless value scales like sqrt(p_ce) ~ 1e-2 prefactored,
        # the heavy-memory one like p_ce itself.
        assert memless > 100.0 * heavy


class TestRegimes:
    def test_masking_approx_value(self):
        """(41): p_f ~ (snr*alpha_q + 1) p_q."""
        p_q = 1e-3
        expected = (0.3 * q_inverse(p_q) + 1.0) * p_q
        assert masking_regime_approx(p_q, 0.3) == pytest.approx(expected)

    def test_masking_matches_eqn37(self):
        """With T_m = T_h_tilde >> T_c, (37) must land near (41)."""
        m = model(t_c=0.05, t_h_tilde=100.0, t_m=100.0)
        p37 = overflow_probability(m, p_ce=1e-3)
        p41 = masking_regime_approx(1e-3, 0.3)
        assert p37 == pytest.approx(p41, rel=0.35)

    def test_repair_matches_eqn37(self):
        """With T_c >> T_h_tilde, the re-derived repair closed form must
        track the numerical (37)."""
        m = model(t_c=3000.0, t_h_tilde=100.0, t_m=100.0)
        p37 = overflow_probability(m, p_ce=1e-3)
        approx = repair_regime_approx(m, p_ce=1e-3)
        assert approx == pytest.approx(p37, rel=0.35)

    def test_repair_regime_meets_target(self):
        """Long T_c with T_m = T_h_tilde keeps p_f below target."""
        m = model(t_c=1000.0, t_h_tilde=100.0, t_m=100.0)
        assert overflow_probability(m, p_ce=1e-3) <= 2e-3

    def test_repair_requires_memory(self):
        with pytest.raises(ParameterError):
            repair_regime_approx(model(t_m=0.0), p_ce=1e-3)

    def test_masking_validates_snr(self):
        with pytest.raises(ParameterError):
            masking_regime_approx(1e-3, 0.0)


class TestPaperFig5Numbers:
    """Anchor the fig-5 operating point so regressions are caught."""

    def test_memoryless_order_one(self):
        p = overflow_probability_separation(model(t_m=0.0), p_ce=1e-3)
        assert 0.3 < p <= 1.0

    def test_knee_behaviour(self):
        p_at_knee = overflow_probability_separation(model(t_m=100.0), p_ce=1e-3)
        p_beyond = overflow_probability_separation(model(t_m=1000.0), p_ce=1e-3)
        assert p_at_knee < 3e-3
        assert p_beyond < p_at_knee
        assert p_at_knee / p_beyond < 3.0  # little further gain: the knee
