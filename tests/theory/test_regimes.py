"""Tests for the masking/repair regime classification."""

import pytest

from repro.errors import ParameterError
from repro.theory.memoryful import ContinuousLoadModel
from repro.theory.regimes import Regime, classify_regime, regime_report


def model(t_c, t_m=100.0, t_h_tilde=100.0) -> ContinuousLoadModel:
    return ContinuousLoadModel(
        correlation_time=t_c, holding_time_scaled=t_h_tilde, snr=0.3, memory=t_m
    )


class TestClassification:
    def test_masking(self):
        assert classify_regime(model(t_c=0.5)) is Regime.MASKING

    def test_repair(self):
        assert classify_regime(model(t_c=5000.0)) is Regime.REPAIR

    def test_crossover(self):
        assert classify_regime(model(t_c=100.0)) is Regime.CROSSOVER

    def test_boundaries_move_with_separation(self):
        m = model(t_c=30.0)
        # 30 * 5 = 150 > min(T_m, T_h_tilde) = 100: not masking at factor 5 ...
        assert classify_regime(m, separation=5.0) is Regime.CROSSOVER
        # ... but a looser factor 3 calls the same point masking (90 <= 100).
        assert classify_regime(m, separation=3.0) is Regime.MASKING

    def test_memoryless_uses_holding_scale(self):
        m = model(t_c=0.5, t_m=0.0)
        assert classify_regime(m) is Regime.MASKING

    def test_rejects_bad_separation(self):
        with pytest.raises(ParameterError):
            classify_regime(model(t_c=1.0), separation=1.0)


class TestRegimeReport:
    def test_masking_report_has_approx(self):
        report = regime_report(model(t_c=0.1), p_ce=1e-3)
        assert report.regime is Regime.MASKING
        assert report.p_f_regime_approx is not None
        assert report.p_f_general == pytest.approx(
            report.p_f_regime_approx, rel=0.5
        )

    def test_repair_report_has_approx(self):
        report = regime_report(model(t_c=5000.0), p_ce=1e-3)
        assert report.regime is Regime.REPAIR
        assert report.p_f_regime_approx is not None
        assert report.p_f_general <= 2e-3  # repair regime meets target

    def test_crossover_has_no_approx(self):
        report = regime_report(model(t_c=100.0), p_ce=1e-3)
        assert report.regime is Regime.CROSSOVER
        assert report.p_f_regime_approx is None

    def test_repair_memoryless_has_no_closed_form(self):
        report = regime_report(model(t_c=5000.0, t_m=0.0), p_ce=1e-3)
        assert report.regime is Regime.REPAIR
        assert report.p_f_regime_approx is None
