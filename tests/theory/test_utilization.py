"""Tests for the utilization formulas (eqn (40))."""

import math

import numpy as np
import pytest

from repro.core.gaussian import q_inverse
from repro.errors import ParameterError
from repro.theory.memoryful import ContinuousLoadModel
from repro.theory.utilization import (
    expected_utilization_mc,
    perfect_knowledge_utilization,
    utilization_difference,
)


class TestEqn40:
    def test_zero_for_equal_targets(self):
        assert utilization_difference(100.0, 0.3, 1e-3, 1e-3) == 0.0

    def test_sign_convention(self):
        """More conservative second target => positive difference."""
        assert utilization_difference(100.0, 0.3, 1e-3, 1e-6) > 0.0

    def test_value(self):
        d = utilization_difference(100.0, 0.3, 1e-3, 1e-5)
        expected = 0.3 * 10.0 * (q_inverse(1e-5) - q_inverse(1e-3))
        assert d == pytest.approx(expected)

    def test_scales_sqrt_n(self):
        d1 = utilization_difference(100.0, 0.3, 1e-3, 1e-5)
        d2 = utilization_difference(400.0, 0.3, 1e-3, 1e-5)
        assert d2 / d1 == pytest.approx(2.0)

    def test_antisymmetric(self):
        a = utilization_difference(100.0, 0.3, 1e-3, 1e-5)
        b = utilization_difference(100.0, 0.3, 1e-5, 1e-3)
        assert a == pytest.approx(-b)

    def test_validation(self):
        with pytest.raises(ParameterError):
            utilization_difference(0.0, 0.3, 1e-3, 1e-4)


class TestPerfectUtilization:
    def test_below_capacity(self):
        u = perfect_knowledge_utilization(100.0, 1.0, 0.3, 1e-3)
        assert u < 100.0

    def test_formula(self):
        u = perfect_knowledge_utilization(100.0, 1.0, 0.3, 1e-3)
        assert u == pytest.approx(100.0 - 0.3 * q_inverse(1e-3) * 10.0)

    def test_looser_target_uses_more(self):
        tight = perfect_knowledge_utilization(100.0, 1.0, 0.3, 1e-6)
        loose = perfect_knowledge_utilization(100.0, 1.0, 0.3, 1e-2)
        assert loose > tight


class TestMonteCarloUtilization:
    def test_differences_match_eqn40(self):
        """Absolute MC utilizations share the sup-term; their difference
        across alpha_ce must be exactly eqn (40) (deterministic, since the
        same seeded paths are reused)."""
        model = ContinuousLoadModel(
            correlation_time=1.0, holding_time_scaled=20.0, snr=0.3, memory=20.0
        )
        n, mu = 100.0, 1.0
        a1, a2 = 3.0, 4.0
        rng1 = np.random.default_rng(7)
        rng2 = np.random.default_rng(7)
        u1 = expected_utilization_mc(
            model, n=n, mu=mu, alpha_ce=a1, n_paths=50, rng=rng1
        )
        u2 = expected_utilization_mc(
            model, n=n, mu=mu, alpha_ce=a2, n_paths=50, rng=rng2
        )
        expected_gap = 0.3 * math.sqrt(n) * (a2 - a1)
        assert u1 - u2 == pytest.approx(expected_gap, rel=1e-9)

    def test_below_capacity_for_conservative_alpha(self):
        model = ContinuousLoadModel(
            correlation_time=1.0, holding_time_scaled=20.0, snr=0.3, memory=20.0
        )
        u = expected_utilization_mc(
            model, n=100.0, mu=1.0, alpha_ce=4.0, n_paths=100,
            rng=np.random.default_rng(3),
        )
        assert u < 100.0

    def test_validation(self):
        model = ContinuousLoadModel(
            correlation_time=1.0, holding_time_scaled=20.0, snr=0.3
        )
        with pytest.raises(ParameterError):
            expected_utilization_mc(model, n=-1.0, mu=1.0, alpha_ce=3.0)
