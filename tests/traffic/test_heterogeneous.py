"""Tests for heterogeneous flow populations (Section 5.4)."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.traffic.heterogeneous import HeterogeneousPopulation, mixture_moments
from repro.traffic.marginals import TruncatedGaussianMarginal
from repro.traffic.rcbr import RcbrSource


def two_class_population() -> HeterogeneousPopulation:
    small = RcbrSource(TruncatedGaussianMarginal.from_cv(0.5, 0.3), 1.0)
    large = RcbrSource(TruncatedGaussianMarginal.from_cv(2.0, 0.3), 4.0)
    return HeterogeneousPopulation([small, large], [0.5, 0.5])


class TestMixtureMoments:
    def test_mean(self):
        m = mixture_moments([0.5, 0.5], [1.0, 3.0], [0.1, 0.1])
        assert m.mean == 2.0

    def test_variance_decomposition(self):
        """Total = within + between (law of total variance)."""
        m = mixture_moments([0.5, 0.5], [1.0, 3.0], [0.2, 0.4])
        within = 0.5 * 0.04 + 0.5 * 0.16
        between = 0.5 * 1.0**2 + 0.5 * 3.0**2 - 2.0**2
        assert m.within_class_variance == pytest.approx(within)
        assert m.between_class_variance == pytest.approx(between)
        assert m.variance == pytest.approx(within + between)

    def test_bias_nonnegative(self):
        """The homogeneity-assuming estimator never under-estimates."""
        m = mixture_moments([0.3, 0.7], [1.0, 1.5], [0.3, 0.2])
        assert m.between_class_variance >= 0.0

    def test_homogeneous_mixture_has_no_bias(self):
        m = mixture_moments([0.4, 0.6], [1.0, 1.0], [0.3, 0.3])
        assert m.between_class_variance == pytest.approx(0.0, abs=1e-12)

    def test_weights_normalized(self):
        a = mixture_moments([1.0, 1.0], [1.0, 3.0], [0.1, 0.1])
        b = mixture_moments([0.5, 0.5], [1.0, 3.0], [0.1, 0.1])
        assert a.mean == b.mean

    def test_validation(self):
        with pytest.raises(ParameterError):
            mixture_moments([0.5], [1.0, 2.0], [0.1, 0.1])
        with pytest.raises(ParameterError):
            mixture_moments([0.0, 0.0], [1.0, 2.0], [0.1, 0.1])
        with pytest.raises(ParameterError):
            mixture_moments([0.5, 0.5], [-1.0, 2.0], [0.1, 0.1])


class TestPopulation:
    def test_population_moments_are_mixture(self):
        pop = two_class_population()
        assert pop.mean == pytest.approx(pop.moments.mean)
        assert pop.std == pytest.approx(pop.moments.std)
        assert pop.std > pop.moments.within_class_std

    def test_class_sampling_frequencies(self, rng):
        small = RcbrSource(TruncatedGaussianMarginal.from_cv(0.5, 0.1), 1.0)
        large = RcbrSource(TruncatedGaussianMarginal.from_cv(5.0, 0.1), 1.0)
        pop = HeterogeneousPopulation([small, large], [0.8, 0.2])
        rates = [pop.new_flow(rng).rate for _ in range(5000)]
        frac_large = np.mean(np.asarray(rates) > 2.5)
        assert frac_large == pytest.approx(0.2, abs=0.02)

    def test_sample_mean_matches_mixture(self, rng):
        pop = two_class_population()
        rates = [pop.new_flow(rng).rate for _ in range(20000)]
        assert np.mean(rates) == pytest.approx(pop.mean, rel=0.02)
        assert np.std(rates) == pytest.approx(pop.std, rel=0.05)

    def test_correlation_time_weighted(self):
        pop = two_class_population()
        assert pop.correlation_time == pytest.approx(0.5 * 1.0 + 0.5 * 4.0)

    def test_correlation_time_none_when_undefined(self, rng):
        from repro.traffic.lrd import starwars_like_source

        lrd = starwars_like_source(n_segments=128, rng=rng)
        small = RcbrSource(TruncatedGaussianMarginal.from_cv(0.5, 0.3), 1.0)
        pop = HeterogeneousPopulation([small, lrd], [0.5, 0.5])
        assert pop.correlation_time is None

    def test_peak_rate_is_max(self):
        pop = two_class_population()
        assert pop.peak_rate == max(s.peak_rate for s in pop.sources)

    def test_validation(self):
        small = RcbrSource(TruncatedGaussianMarginal.from_cv(0.5, 0.3), 1.0)
        with pytest.raises(ParameterError):
            HeterogeneousPopulation([small], [0.5, 0.5])
        with pytest.raises(ParameterError):
            HeterogeneousPopulation([], [])
