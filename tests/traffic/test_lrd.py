"""Tests for the synthetic LRD video traffic (the Starwars substitute)."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.processes.autocorr import hurst_aggregated_variance
from repro.traffic.lrd import starwars_like_source, synthetic_video_trace


class TestSyntheticTrace:
    def test_target_moments(self, rng):
        # LRD sample means converge only like N^(H-1) ~ N^-0.15, so even at
        # 16k samples the per-trace mean wanders by >10%; average over
        # several independent traces to test the ensemble target.
        means, cvs = [], []
        for _ in range(8):
            tr = synthetic_video_trace(
                n_segments=1 << 14, segment_time=1.0, mean=2.0, cv=0.3, rng=rng
            )
            means.append(tr.mean)
            cvs.append(tr.std / tr.mean)
        assert np.mean(means) == pytest.approx(2.0, rel=0.1)
        assert np.mean(cvs) == pytest.approx(0.3, rel=0.25)

    def test_nonnegative(self, rng):
        tr = synthetic_video_trace(
            n_segments=4096, segment_time=1.0, cv=0.8, rng=rng
        )
        assert np.all(tr.rates > 0.0)

    def test_hurst_recovered(self, rng):
        """The aggregated-variance estimator must recover the configured
        Hurst exponent from the synthesized trace."""
        tr = synthetic_video_trace(
            n_segments=1 << 15, segment_time=1.0, hurst=0.85, rng=rng
        )
        h = hurst_aggregated_variance(tr.rates)
        assert h == pytest.approx(0.85, abs=0.08)

    def test_white_case_hurst_half(self, rng):
        tr = synthetic_video_trace(
            n_segments=1 << 15, segment_time=1.0, hurst=0.5, rng=rng
        )
        h = hurst_aggregated_variance(tr.rates)
        assert h == pytest.approx(0.5, abs=0.08)

    def test_lognormal_marginal(self, rng):
        tr = synthetic_video_trace(
            n_segments=1 << 13,
            segment_time=1.0,
            cv=0.5,
            marginal="lognormal",
            rng=rng,
        )
        assert np.all(tr.rates > 0.0)
        assert tr.mean == pytest.approx(1.0, rel=0.15)
        # Lognormal is right-skewed.
        assert np.mean((tr.rates - tr.mean) ** 3) > 0.0

    def test_validation(self, rng):
        with pytest.raises(ParameterError):
            synthetic_video_trace(n_segments=10, segment_time=1.0, rng=rng)
        with pytest.raises(ParameterError):
            synthetic_video_trace(
                n_segments=128, segment_time=1.0, hurst=0.3, rng=rng
            )
        with pytest.raises(ParameterError):
            synthetic_video_trace(
                n_segments=128, segment_time=1.0, marginal="cauchy", rng=rng
            )

    def test_reproducible(self):
        a = synthetic_video_trace(
            n_segments=256, segment_time=1.0, rng=np.random.default_rng(5)
        )
        b = synthetic_video_trace(
            n_segments=256, segment_time=1.0, rng=np.random.default_rng(5)
        )
        np.testing.assert_array_equal(a.rates, b.rates)


class TestStarwarsLikeSource:
    def test_default_build(self, rng):
        src = starwars_like_source(n_segments=1 << 12, rng=rng)
        assert src.mean > 0.0
        assert src.correlation_time is None  # LRD: no single time-scale

    def test_smoothing_coarsens_segments(self, rng):
        src = starwars_like_source(
            n_segments=1 << 12, segment_time=0.04, renegotiation_period=1.0, rng=rng
        )
        assert src.trace.segment_time == pytest.approx(1.0)

    def test_raw_playback_option(self, rng):
        src = starwars_like_source(
            n_segments=1 << 12, segment_time=0.04, renegotiation_period=None, rng=rng
        )
        assert src.trace.segment_time == pytest.approx(0.04)
