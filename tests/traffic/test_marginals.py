"""Tests for the marginal rate distributions."""

import math

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.traffic.marginals import (
    DeterministicMarginal,
    EmpiricalMarginal,
    LognormalMarginal,
    TruncatedGaussianMarginal,
    UniformMarginal,
)


class TestTruncatedGaussian:
    def test_exact_moments_match_samples(self, rng):
        m = TruncatedGaussianMarginal.from_cv(1.0, 0.3)
        draws = m.sample(rng, 200000)
        assert draws.mean() == pytest.approx(m.mean, rel=3e-3)
        assert draws.std() == pytest.approx(m.std, rel=1e-2)

    def test_truncation_correction_is_tiny_at_cv03(self):
        m = TruncatedGaussianMarginal.from_cv(1.0, 0.3)
        assert m.mean == pytest.approx(1.0, abs=2e-3)
        assert m.std == pytest.approx(0.3, abs=2e-3)

    def test_truncation_correction_grows_with_cv(self):
        mild = TruncatedGaussianMarginal.from_cv(1.0, 0.3)
        heavy = TruncatedGaussianMarginal.from_cv(1.0, 0.9)
        assert (heavy.mean - 1.0) > (mild.mean - 1.0)

    def test_all_samples_positive(self, rng):
        m = TruncatedGaussianMarginal.from_cv(1.0, 0.9)
        assert np.all(m.sample(rng, 50000) > 0.0)

    def test_scalar_sample(self, rng):
        assert isinstance(TruncatedGaussianMarginal.from_cv(1.0, 0.3).sample(rng), float)

    def test_unbounded_peak(self):
        assert TruncatedGaussianMarginal.from_cv(1.0, 0.3).peak == math.inf

    def test_validation(self):
        with pytest.raises(ParameterError):
            TruncatedGaussianMarginal(loc=-1.0, scale=0.3)
        with pytest.raises(ParameterError):
            TruncatedGaussianMarginal(loc=1.0, scale=0.0)
        with pytest.raises(ParameterError):
            TruncatedGaussianMarginal.from_cv(1.0, 0.0)


class TestLognormal:
    def test_moments(self, rng):
        m = LognormalMarginal(mean=2.0, cv=0.5)
        assert m.mean == 2.0
        assert m.std == 1.0
        draws = m.sample(rng, 300000)
        assert draws.mean() == pytest.approx(2.0, rel=5e-3)
        assert draws.std() == pytest.approx(1.0, rel=3e-2)

    def test_positive_support(self, rng):
        assert np.all(LognormalMarginal(1.0, 1.0).sample(rng, 10000) > 0.0)

    def test_validation(self):
        with pytest.raises(ParameterError):
            LognormalMarginal(0.0, 0.3)


class TestUniform:
    def test_moments(self, rng):
        m = UniformMarginal(1.0, 3.0)
        assert m.mean == 2.0
        assert m.std == pytest.approx(2.0 / math.sqrt(12.0))
        assert m.peak == 3.0
        draws = m.sample(rng, 100000)
        assert draws.min() >= 1.0 and draws.max() <= 3.0

    def test_validation(self):
        with pytest.raises(ParameterError):
            UniformMarginal(3.0, 1.0)
        with pytest.raises(ParameterError):
            UniformMarginal(-1.0, 1.0)


class TestDeterministic:
    def test_constant(self, rng):
        m = DeterministicMarginal(2.5)
        assert m.mean == 2.5 and m.std == 0.0 and m.peak == 2.5
        assert m.sample(rng) == 2.5
        assert np.all(m.sample(rng, 10) == 2.5)

    def test_validation(self):
        with pytest.raises(ParameterError):
            DeterministicMarginal(0.0)


class TestEmpirical:
    def test_resamples_support(self, rng):
        values = np.array([1.0, 2.0, 5.0])
        m = EmpiricalMarginal(values)
        draws = m.sample(rng, 1000)
        assert set(np.unique(draws)).issubset(set(values))

    def test_moments_match_source(self):
        values = np.array([1.0, 2.0, 5.0, 2.0])
        m = EmpiricalMarginal(values)
        assert m.mean == pytest.approx(values.mean())
        assert m.std == pytest.approx(values.std())
        assert m.peak == 5.0

    def test_validation(self):
        with pytest.raises(ParameterError):
            EmpiricalMarginal([])
        with pytest.raises(ParameterError):
            EmpiricalMarginal([1.0, -2.0])
