"""Tests for the Markov-modulated fluid sources."""

import math

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.traffic.markov import MarkovFluidSource


def three_state() -> MarkovFluidSource:
    generator = np.array(
        [
            [-2.0, 1.5, 0.5],
            [1.0, -2.0, 1.0],
            [0.25, 0.75, -1.0],
        ]
    )
    return MarkovFluidSource(generator, [0.0, 1.0, 3.0])


class TestConstruction:
    def test_stationary_distribution_solves_balance(self):
        src = three_state()
        residual = src.stationary @ src.generator
        assert np.max(np.abs(residual)) < 1e-9
        assert src.stationary.sum() == pytest.approx(1.0)

    def test_moments_from_stationary(self):
        src = three_state()
        expected_mean = float(src.stationary @ src.rates)
        assert src.mean == pytest.approx(expected_mean)
        second = float(src.stationary @ (src.rates**2))
        assert src.std == pytest.approx(math.sqrt(second - expected_mean**2))

    def test_peak_rate(self):
        assert three_state().peak_rate == 3.0

    @pytest.mark.parametrize(
        "generator,rates",
        [
            ([[0.0]], [1.0, 2.0]),  # shape mismatch
            ([[-1.0, 1.0], [1.0, -2.0]], [1.0, 2.0]),  # rows don't sum to 0
            ([[-1.0, 1.0], [-0.5, 0.5]], [1.0, 2.0]),  # negative off-diagonal
            ([[-1.0, 1.0], [1.0, -1.0]], [-1.0, 2.0]),  # negative rate
        ],
    )
    def test_validation(self, generator, rates):
        with pytest.raises(ParameterError):
            MarkovFluidSource(generator, rates)


class TestTwoState:
    def test_factory(self):
        src = MarkovFluidSource.two_state(
            rate_low=0.0, rate_high=2.0, up_rate=1.0, down_rate=3.0
        )
        # Stationary on-probability = up/(up+down) = 1/4.
        assert src.mean == pytest.approx(0.5)

    def test_exponential_autocorrelation(self):
        """Two-state chains have rho(t) = exp(-(up+down) t) exactly."""
        src = MarkovFluidSource.two_state(
            rate_low=0.0, rate_high=1.0, up_rate=0.5, down_rate=1.5
        )
        for t in [0.1, 0.5, 2.0]:
            assert src.autocorrelation(t) == pytest.approx(
                math.exp(-2.0 * t), rel=1e-6
            )

    def test_correlation_time_integral(self):
        """Integral time-scale of exp(-2t) is 1/2."""
        src = MarkovFluidSource.two_state(
            rate_low=0.0, rate_high=1.0, up_rate=0.5, down_rate=1.5
        )
        assert src.correlation_time == pytest.approx(0.5, rel=1e-6)


class TestAutocorrelation:
    def test_rho_zero_is_one(self):
        assert three_state().autocorrelation(0.0) == pytest.approx(1.0)

    def test_decays(self):
        src = three_state()
        values = [src.autocorrelation(t) for t in [0.0, 0.5, 2.0, 8.0]]
        assert values == sorted(values, reverse=True)
        assert values[-1] < 0.05

    def test_even_function(self):
        src = three_state()
        assert src.autocorrelation(-1.0) == pytest.approx(src.autocorrelation(1.0))

    def test_cbr_rejects(self):
        src = MarkovFluidSource([[-1.0, 1.0], [1.0, -1.0]], [2.0, 2.0])
        with pytest.raises(ParameterError):
            src.autocorrelation(1.0)

    def test_cbr_correlation_time_none(self):
        src = MarkovFluidSource([[-1.0, 1.0], [1.0, -1.0]], [2.0, 2.0])
        assert src.correlation_time is None


class TestFlowDynamics:
    def test_stationary_state_occupancy(self, rng):
        src = three_state()
        states = [src.new_flow(rng).state for _ in range(20000)]
        counts = np.bincount(states, minlength=3) / len(states)
        np.testing.assert_allclose(counts, src.stationary, atol=0.015)

    def test_time_average_rate_converges(self, rng):
        """Long time-average of one flow must converge to the ensemble mean
        (ergodicity of the CTMC)."""
        src = three_state()
        flow = src.new_flow(rng)
        total_time = 0.0
        weighted = 0.0
        for _ in range(50000):
            dt = flow.time_to_next_change(rng)
            weighted += flow.rate * dt
            total_time += dt
            flow.apply_change(rng)
        assert weighted / total_time == pytest.approx(src.mean, rel=0.03)

    def test_jump_probabilities_normalized(self):
        src = three_state()
        for i in range(3):
            assert src.jump_probs[i].sum() == pytest.approx(1.0)
            assert src.jump_probs[i, i] == 0.0


class TestBirthDeath:
    def test_binomial_moments(self):
        """Stationary state ~ Binomial(n, p): mean = peak*p,
        var = peak^2 p(1-p)/n."""
        src = MarkovFluidSource.birth_death(
            n_sources=8, peak=2.0, up_rate=1.0, down_rate=3.0
        )
        p_on = 0.25
        assert src.mean == pytest.approx(2.0 * p_on, rel=1e-9)
        expected_var = 2.0**2 * p_on * (1 - p_on) / 8
        assert src.std**2 == pytest.approx(expected_var, rel=1e-9)

    def test_relaxation_time(self):
        """The slowest mode of the birth-death chain relaxes at up+down."""
        src = MarkovFluidSource.birth_death(
            n_sources=4, peak=1.0, up_rate=0.5, down_rate=1.5
        )
        assert src.correlation_time == pytest.approx(0.5, rel=1e-6)
        assert src.autocorrelation(1.0) == pytest.approx(
            math.exp(-2.0), rel=1e-6
        )

    def test_more_sources_smoother(self):
        coarse = MarkovFluidSource.birth_death(
            n_sources=2, peak=1.0, up_rate=1.0, down_rate=1.0
        )
        fine = MarkovFluidSource.birth_death(
            n_sources=32, peak=1.0, up_rate=1.0, down_rate=1.0
        )
        assert fine.std < coarse.std
        assert fine.mean == pytest.approx(coarse.mean)

    def test_single_source_is_on_off(self):
        bd = MarkovFluidSource.birth_death(
            n_sources=1, peak=2.0, up_rate=1.0, down_rate=3.0
        )
        two_state = MarkovFluidSource.two_state(
            rate_low=0.0, rate_high=2.0, up_rate=1.0, down_rate=3.0
        )
        assert bd.mean == pytest.approx(two_state.mean)
        assert bd.std == pytest.approx(two_state.std)

    def test_flow_transitions_are_nearest_neighbour(self, rng):
        src = MarkovFluidSource.birth_death(
            n_sources=5, peak=1.0, up_rate=1.0, down_rate=1.0
        )
        flow = src.new_flow(rng)
        prev = flow.state
        for _ in range(200):
            flow.apply_change(rng)
            assert abs(flow.state - prev) == 1
            prev = flow.state

    def test_validation(self):
        with pytest.raises(ParameterError):
            MarkovFluidSource.birth_death(
                n_sources=0, peak=1.0, up_rate=1.0, down_rate=1.0
            )
        with pytest.raises(ParameterError):
            MarkovFluidSource.birth_death(
                n_sources=2, peak=0.0, up_rate=1.0, down_rate=1.0
            )
