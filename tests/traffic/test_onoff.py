"""Tests for the on-off source."""

import math

import pytest

from repro.errors import ParameterError
from repro.traffic.onoff import OnOffSource, on_off_source


class TestMoments:
    def test_mean(self):
        src = OnOffSource(peak=2.0, activity=0.25, burst_time=1.0)
        assert src.mean == pytest.approx(0.5)

    def test_variance(self):
        src = OnOffSource(peak=2.0, activity=0.25, burst_time=1.0)
        assert src.std == pytest.approx(2.0 * math.sqrt(0.25 * 0.75))

    def test_peak(self):
        assert OnOffSource(peak=2.0, activity=0.5, burst_time=1.0).peak_rate == 2.0


class TestTimeScales:
    def test_relaxation_time(self):
        src = OnOffSource(peak=1.0, activity=0.25, burst_time=2.0)
        # up = down * 1/3; down = 0.5 => up+down = 2/3 => T = 1.5.
        assert src.relaxation_time == pytest.approx(1.5)

    def test_autocorrelation_matches_relaxation(self):
        src = OnOffSource(peak=1.0, activity=0.25, burst_time=2.0)
        t = 0.7
        assert src.autocorrelation(t) == pytest.approx(
            math.exp(-t / src.relaxation_time), rel=1e-6
        )

    def test_integral_correlation_time(self):
        src = OnOffSource(peak=1.0, activity=0.25, burst_time=2.0)
        assert src.correlation_time == pytest.approx(src.relaxation_time, rel=1e-6)


class TestFactory:
    def test_from_mean_peak(self):
        src = on_off_source(mean=0.5, peak=2.0, burst_time=1.0)
        assert src.activity == pytest.approx(0.25)
        assert src.mean == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ParameterError):
            on_off_source(mean=2.0, peak=1.0, burst_time=1.0)
        with pytest.raises(ParameterError):
            OnOffSource(peak=1.0, activity=1.0, burst_time=1.0)
        with pytest.raises(ParameterError):
            OnOffSource(peak=1.0, activity=0.5, burst_time=0.0)


class TestDynamics:
    def test_only_two_rates(self, rng):
        src = OnOffSource(peak=3.0, activity=0.5, burst_time=1.0)
        flow = src.new_flow(rng)
        seen = set()
        for _ in range(100):
            seen.add(flow.rate)
            flow.apply_change(rng)
        assert seen == {0.0, 3.0}

    def test_alternates_strictly(self, rng):
        src = OnOffSource(peak=3.0, activity=0.5, burst_time=1.0)
        flow = src.new_flow(rng)
        prev = flow.rate
        for _ in range(50):
            flow.apply_change(rng)
            assert flow.rate != prev
            prev = flow.rate

    def test_mean_on_time(self, rng):
        src = OnOffSource(peak=1.0, activity=0.5, burst_time=2.0)
        flow = src.new_flow(rng)
        on_times = []
        for _ in range(20000):
            if flow.rate == 1.0:
                on_times.append(flow.time_to_next_change(rng))
            flow.apply_change(rng)
        assert sum(on_times) / len(on_times) == pytest.approx(2.0, rel=0.05)
