"""Tests for the RCBR source (the paper's simulation workload)."""

import math

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.traffic.marginals import TruncatedGaussianMarginal, UniformMarginal
from repro.traffic.rcbr import RcbrSource, paper_rcbr_source


class TestSourceProperties:
    def test_moments_delegate_to_marginal(self, paper_marginal):
        src = RcbrSource(paper_marginal, correlation_time=2.0)
        assert src.mean == paper_marginal.mean
        assert src.std == paper_marginal.std
        assert src.snr == pytest.approx(paper_marginal.std / paper_marginal.mean)

    def test_correlation_time(self, paper_marginal):
        src = RcbrSource(paper_marginal, correlation_time=2.0)
        assert src.correlation_time == 2.0
        assert src.renegotiation_timescale == 2.0

    def test_analytic_autocorrelation(self, paper_marginal):
        src = RcbrSource(paper_marginal, correlation_time=2.0)
        assert src.autocorrelation(0.0) == 1.0
        assert src.autocorrelation(2.0) == pytest.approx(math.exp(-1.0))
        assert src.autocorrelation(-2.0) == src.autocorrelation(2.0)

    def test_bounded_marginal_peak(self):
        src = RcbrSource(UniformMarginal(0.5, 2.0), correlation_time=1.0)
        assert src.peak_rate == 2.0

    def test_unbounded_marginal_peak_fallback(self, paper_marginal):
        src = RcbrSource(paper_marginal, correlation_time=1.0)
        assert src.peak_rate == pytest.approx(src.mean + 3.0 * src.std)

    def test_validation(self, paper_marginal):
        with pytest.raises(ParameterError):
            RcbrSource(paper_marginal, correlation_time=0.0)

    def test_factory_defaults(self):
        src = paper_rcbr_source()
        assert isinstance(src.marginal, TruncatedGaussianMarginal)
        assert src.snr == pytest.approx(0.3, abs=5e-3)


class TestFlowProcess:
    def test_initial_rate_stationary(self, paper_marginal, rng):
        src = RcbrSource(paper_marginal, correlation_time=1.0)
        rates = [src.new_flow(rng).rate for _ in range(5000)]
        assert np.mean(rates) == pytest.approx(src.mean, rel=2e-2)

    def test_exponential_intervals(self, paper_marginal, rng):
        src = RcbrSource(paper_marginal, correlation_time=2.0)
        flow = src.new_flow(rng)
        gaps = [flow.time_to_next_change(rng) for _ in range(20000)]
        assert np.mean(gaps) == pytest.approx(2.0, rel=3e-2)
        # Exponential: std == mean.
        assert np.std(gaps) == pytest.approx(2.0, rel=5e-2)

    def test_rate_changes_are_iid(self, paper_marginal, rng):
        """Successive post-change rates must be uncorrelated."""
        src = RcbrSource(paper_marginal, correlation_time=1.0)
        flow = src.new_flow(rng)
        rates = []
        for _ in range(20000):
            flow.apply_change(rng)
            rates.append(flow.rate)
        rates = np.asarray(rates)
        lag1 = np.corrcoef(rates[:-1], rates[1:])[0, 1]
        assert abs(lag1) < 0.03

    def test_vectorized_sampling(self, paper_marginal, rng):
        src = RcbrSource(paper_marginal, correlation_time=1.0)
        rates = src.sample_rates(rng, 1000)
        assert rates.shape == (1000,)
        assert np.all(rates > 0.0)


class TestEmpiricalAutocorrelation:
    def test_matches_exponential_model(self, rng):
        """Simulated RCBR path autocorrelation must be ~exp(-t/T_c): the
        property that ties the simulator to the OU-based theory."""
        from repro.processes.autocorr import empirical_autocorrelation

        t_c = 1.0
        dt = 0.05
        n_steps = 200000
        src = paper_rcbr_source(correlation_time=t_c)
        flow = src.new_flow(rng)
        # Sample the flow rate on a regular grid by advancing event times.
        rates = np.empty(n_steps)
        t_next = flow.time_to_next_change(rng)
        for k in range(n_steps):
            t = k * dt
            while t >= t_next:
                flow.apply_change(rng)
                t_next += flow.time_to_next_change(rng)
            rates[k] = flow.rate
        rho = empirical_autocorrelation(rates, max_lag=int(2.0 * t_c / dt))
        lags = np.arange(rho.size) * dt
        expected = np.exp(-lags / t_c)
        assert np.max(np.abs(rho - expected)) < 0.05
