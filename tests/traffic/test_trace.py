"""Tests for trace-driven traffic."""

import numpy as np
import pytest

from repro.errors import ParameterError, TraceError
from repro.traffic.trace import Trace, TraceSource, rcbr_smooth


def simple_trace() -> Trace:
    return Trace(rates=np.array([1.0, 2.0, 3.0, 2.0]), segment_time=0.5)


class TestTrace:
    def test_properties(self):
        tr = simple_trace()
        assert tr.duration == 2.0
        assert tr.mean == 2.0
        assert tr.peak == 3.0

    def test_validation(self):
        with pytest.raises(TraceError):
            Trace(rates=np.array([1.0]), segment_time=0.5)
        with pytest.raises(TraceError):
            Trace(rates=np.array([1.0, -1.0]), segment_time=0.5)
        with pytest.raises(TraceError):
            Trace(rates=np.array([1.0, np.inf]), segment_time=0.5)
        with pytest.raises(TraceError):
            Trace(rates=np.array([1.0, 2.0]), segment_time=0.0)


class TestRcbrSmooth:
    def test_averages_periods(self):
        tr = Trace(rates=np.array([1.0, 3.0, 2.0, 4.0]), segment_time=1.0)
        smoothed = rcbr_smooth(tr, renegotiation_period=2.0)
        np.testing.assert_allclose(smoothed.rates, [2.0, 3.0])
        assert smoothed.segment_time == 2.0

    def test_drops_trailing_partial(self):
        tr = Trace(rates=np.array([1.0, 1.0, 1.0, 1.0, 9.0]), segment_time=1.0)
        smoothed = rcbr_smooth(tr, renegotiation_period=2.0)
        assert smoothed.rates.size == 2
        assert smoothed.mean == 1.0  # the trailing 9.0 was dropped

    def test_preserves_mean(self, rng):
        rates = rng.uniform(0.5, 2.0, size=128)
        tr = Trace(rates=rates, segment_time=1.0)
        smoothed = rcbr_smooth(tr, renegotiation_period=4.0)
        assert smoothed.mean == pytest.approx(tr.mean, rel=1e-9)

    def test_reduces_variance(self, rng):
        rates = rng.uniform(0.5, 2.0, size=256)
        tr = Trace(rates=rates, segment_time=1.0)
        smoothed = rcbr_smooth(tr, renegotiation_period=8.0)
        assert smoothed.std < tr.std

    def test_validation(self):
        tr = simple_trace()
        with pytest.raises(ParameterError):
            rcbr_smooth(tr, renegotiation_period=0.1)
        with pytest.raises(ParameterError):
            rcbr_smooth(tr, renegotiation_period=100.0)


class TestTraceFlow:
    def test_plays_trace_rates_only(self, rng):
        src = TraceSource(simple_trace())
        flow = src.new_flow(rng)
        for _ in range(20):
            assert flow.rate in {1.0, 2.0, 3.0}
            flow.apply_change(rng)

    def test_wraps_in_trace_order(self, rng):
        tr = Trace(rates=np.array([1.0, 2.0, 3.0]), segment_time=1.0)
        src = TraceSource(tr)
        flow = src.new_flow(rng)
        seq = []
        for _ in range(6):
            seq.append(flow.rate)
            flow.apply_change(rng)
        # The sequence must be a contiguous (wrapped) run of the trace.
        start = tr.rates.tolist().index(seq[0])
        expected = [tr.rates[(start + k) % 3] for k in range(6)]
        assert seq == expected

    def test_first_change_is_subsegment(self, rng):
        src = TraceSource(simple_trace())
        flow = src.new_flow(rng)
        first = flow.time_to_next_change(rng)
        assert 0.0 <= first <= 0.5
        # Subsequent changes are full segments.
        flow.apply_change(rng)
        assert flow.time_to_next_change(rng) == 0.5

    def test_random_phases_decorrelate_flows(self, rng):
        """An ensemble of flows must be stationary: the ensemble-average
        initial rate is the trace mean, not the first segment's rate."""
        tr = Trace(rates=np.array([10.0] + [1.0] * 9), segment_time=1.0)
        src = TraceSource(tr)
        initial = [src.new_flow(rng).rate for _ in range(4000)]
        assert np.mean(initial) == pytest.approx(tr.mean, rel=0.1)


class TestTraceSource:
    def test_moments(self):
        src = TraceSource(simple_trace())
        assert src.mean == 2.0
        assert src.peak_rate == 3.0
        assert src.correlation_time is None

    def test_empirical_correlation_time(self, rng):
        """For a white (i.i.d.) trace, the integral scale is ~half a segment
        (only the lag-0 trapezoid term survives)."""
        rates = rng.uniform(0.5, 2.0, size=4096)
        src = TraceSource(Trace(rates=rates, segment_time=2.0))
        tau = src.empirical_correlation_time()
        assert tau == pytest.approx(1.0, abs=0.5)

    def test_rejects_zero_mean(self):
        with pytest.raises(TraceError):
            TraceSource(Trace(rates=np.zeros(4), segment_time=1.0))
