"""Tests for the GoP-structured VBR video source."""

import math

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.traffic.marginals import DeterministicMarginal
from repro.traffic.vbr import (
    DEFAULT_GOP_PATTERN,
    DEFAULT_SIZE_RATIOS,
    VbrVideoSource,
    paper_vbr_source,
)


def deterministic_source(frame_rate=12.0) -> VbrVideoSource:
    marginals = {
        t: DeterministicMarginal(ratio)
        for t, ratio in DEFAULT_SIZE_RATIOS.items()
    }
    return VbrVideoSource(marginals, DEFAULT_GOP_PATTERN, frame_rate)


class TestExactMoments:
    def test_mixture_mean_over_the_gop(self):
        src = deterministic_source()
        # IBBPBBPBBPBB: 1 I, 3 P, 8 B out of 12 frames.
        expected = (1 * 5.0 + 3 * 2.5 + 8 * 1.0) / 12.0
        assert src.mean == pytest.approx(expected)

    def test_mixture_variance_is_the_between_type_variance(self):
        src = deterministic_source()
        second = (1 * 5.0**2 + 3 * 2.5**2 + 8 * 1.0**2) / 12.0
        assert src.std == pytest.approx(math.sqrt(second - src.mean**2))

    def test_correlation_time_is_one_gop(self):
        src = deterministic_source(frame_rate=24.0)
        assert src.correlation_time == pytest.approx(12.0 / 24.0)
        assert src.frame_period == pytest.approx(1.0 / 24.0)


class TestPaperFactory:
    def test_requested_moments_are_exposed_exactly(self):
        src = paper_vbr_source(4.0, 0.7, gop_time=1.0)
        assert src.mean == pytest.approx(4.0, rel=1e-9)
        assert src.std == pytest.approx(0.7 * 4.0, rel=1e-9)

    def test_low_cv_is_floored_not_under_dispersed(self):
        """The deterministic I/P/B ratios alone give CV ~ 0.69; asking
        for less yields a slightly burstier source, never a crash."""
        src = paper_vbr_source(1.0, 0.1, gop_time=1.0)
        assert src.mean == pytest.approx(1.0, rel=1e-9)
        assert src.std / src.mean > 0.1

    def test_gop_time_sets_the_correlation_time(self):
        src = paper_vbr_source(2.0, 0.7, gop_time=0.4)
        assert src.correlation_time == pytest.approx(0.4)

    @pytest.mark.parametrize("kwargs", [
        dict(mean=0.0, cv=0.7, gop_time=1.0),
        dict(mean=1.0, cv=0.0, gop_time=1.0),
        dict(mean=1.0, cv=0.7, gop_time=0.0),
        dict(mean=1.0, cv=0.7, gop_time=1.0, pattern="IX"),
        dict(mean=1.0, cv=0.7, gop_time=1.0,
             size_ratios={"I": -1.0, "P": 2.5, "B": 1.0}),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ParameterError):
            paper_vbr_source(**kwargs)


class TestGopCycle:
    def test_flow_steps_through_the_pattern_deterministically(self):
        src = deterministic_source()
        rng = np.random.default_rng(5)
        flow = src.new_flow(rng)
        start = flow._position
        seen = [flow.rate]
        for _ in range(len(src.pattern)):
            assert flow.time_to_next_change(rng) == src.frame_period
            flow.apply_change(rng)
            seen.append(flow.rate)
        # Deterministic marginals: one full cycle returns to the start.
        assert seen[-1] == seen[0]
        expected = [
            DEFAULT_SIZE_RATIOS[src.pattern[(start + i) % 12]]
            for i in range(13)
        ]
        assert seen == expected

    def test_random_phase_makes_the_population_stationary(self):
        src = deterministic_source()
        rng = np.random.default_rng(0)
        phases = {src.new_flow(rng)._position for _ in range(200)}
        assert phases == set(range(12))


class TestSampling:
    def test_sample_rates_is_seed_deterministic(self):
        src = paper_vbr_source(3.0, 0.7, gop_time=1.0)
        a = src.sample_rates(np.random.default_rng(42), 64)
        b = src.sample_rates(np.random.default_rng(42), 64)
        assert np.array_equal(a, b)

    def test_sample_rates_match_the_exposed_moments(self):
        src = paper_vbr_source(3.0, 0.7, gop_time=1.0)
        draws = src.sample_rates(np.random.default_rng(1), 200_000)
        assert draws.mean() == pytest.approx(src.mean, rel=0.02)
        assert draws.std() == pytest.approx(src.std, rel=0.03)
        assert (draws > 0.0).all()

    def test_empty_request(self):
        src = deterministic_source()
        assert src.sample_rates(np.random.default_rng(0), 0).size == 0


class TestConstruction:
    def test_pattern_must_be_covered_by_marginals(self):
        with pytest.raises(ParameterError):
            VbrVideoSource(
                {"I": DeterministicMarginal(1.0)}, "IBB", frame_rate=12.0
            )

    def test_empty_pattern_and_bad_frame_rate(self):
        marginals = {"I": DeterministicMarginal(1.0)}
        with pytest.raises(ParameterError):
            VbrVideoSource(marginals, "", frame_rate=12.0)
        with pytest.raises(ParameterError):
            VbrVideoSource(marginals, "I", frame_rate=0.0)
